// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Unit and conformance tests for the serve layer (DESIGN.md §14): the
// BoundedQueue hand-off channel, the weighted QoS scheduler, the sosd wire
// protocol (round-trip, malformed-input and fuzz conformance), and the
// AsyncBlockService in deterministic pump mode -- including the
// batch-vs-serial equivalence the coalescer must preserve. The concurrent
// harness lives in serve_stress_test.cc.

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/common/rng.h"
#include "src/serve/bounded_queue.h"
#include "src/serve/client.h"
#include "src/serve/qos.h"
#include "src/serve/server.h"
#include "src/serve/service.h"
#include "src/serve/wire.h"
#include "src/sos/sos_device.h"

#include <sys/socket.h>
#include <unistd.h>

namespace sos::serve {
namespace {

// --- BoundedQueue -----------------------------------------------------------

TEST(BoundedQueueTest, FifoOrderAndCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.capacity(), 2u);
  ASSERT_TRUE(queue.TryPush(1).ok());
  ASSERT_TRUE(queue.TryPush(2).ok());
  EXPECT_EQ(queue.TryPush(3).code(), StatusCode::kUnavailable);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
  EXPECT_EQ(queue.TryPop(), std::nullopt);
}

TEST(BoundedQueueTest, ShutdownDrainsThenSignalsClosed) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(7).ok());
  queue.Shutdown();
  EXPECT_EQ(queue.Push(8).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(queue.Pop(), std::optional<int>(7));  // queued items still drain
  EXPECT_EQ(queue.Pop(), std::nullopt);           // then closed
}

TEST(BoundedQueueTest, ShutdownWakesBlockedConsumer) {
  BoundedQueue<int> queue(1);
  std::optional<int> got = 42;
  std::thread consumer([&queue, &got] { got = queue.Pop(); });
  queue.Shutdown();
  consumer.join();
  EXPECT_EQ(got, std::nullopt);
}

TEST(BoundedQueueTest, ShutdownWakesBlockedProducer) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1).ok());
  Status pushed = Status::Ok();
  std::thread producer([&queue, &pushed] { pushed = queue.Push(2); });
  queue.Shutdown();
  producer.join();
  EXPECT_EQ(pushed.code(), StatusCode::kFailedPrecondition);
}

// --- QosScheduler -----------------------------------------------------------

Pending MakePending(QosClass cls, uint64_t seq, ServeOp op = ServeOp::kRead, uint64_t lba = 0) {
  Pending p;
  p.cls = cls;
  p.seq = seq;
  p.req.op = op;
  p.req.lba = lba;
  return p;
}

TEST(QosSchedulerTest, QosOffIsGlobalFifo) {
  QosScheduler sched(/*qos_enabled=*/false, QosWeights{});
  sched.Enqueue(MakePending(QosClass::kMaintenance, 0));
  sched.Enqueue(MakePending(QosClass::kSysRead, 1));
  sched.Enqueue(MakePending(QosClass::kBulk, 2));
  for (uint64_t want = 0; want < 3; ++want) {
    auto next = sched.Next();
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->seq, want);
  }
  EXPECT_FALSE(sched.Next().has_value());
}

TEST(QosSchedulerTest, WeightedDispatchFollowsPriorityAndCredits) {
  // Weights 2/1/1/1 and a full backlog: one cycle must serve sys_read twice
  // and each other class once, in priority order.
  QosWeights weights;
  weights.weights[0] = 2;
  weights.weights[1] = 1;
  weights.weights[2] = 1;
  weights.weights[3] = 1;
  QosScheduler sched(/*qos_enabled=*/true, weights);
  uint64_t seq = 0;
  for (int i = 0; i < 3; ++i) {
    for (uint32_t c = 0; c < kNumQosClasses; ++c) {
      sched.Enqueue(MakePending(static_cast<QosClass>(c), seq++));
    }
  }
  std::vector<QosClass> order;
  for (int i = 0; i < 5; ++i) {
    order.push_back(sched.Next()->cls);
  }
  const std::vector<QosClass> want = {QosClass::kSysRead, QosClass::kSysRead, QosClass::kSysWrite,
                                      QosClass::kBulk, QosClass::kMaintenance};
  EXPECT_EQ(order, want);
}

TEST(QosSchedulerTest, SysReadWaitIsBoundedBehindBulkBacklog) {
  // 64 bulk requests queued first; a late sys read must still dispatch
  // within one weight cycle (here: at most weights.bulk + weights.maint
  // dispatches after it arrives), not after the whole bulk run.
  QosScheduler sched(/*qos_enabled=*/true, QosWeights{});
  for (uint64_t i = 0; i < 64; ++i) {
    sched.Enqueue(MakePending(QosClass::kBulk, i));
  }
  sched.Enqueue(MakePending(QosClass::kSysRead, 1000));
  size_t position = 0;
  for (;; ++position) {
    auto next = sched.Next();
    ASSERT_TRUE(next.has_value());
    if (next->cls == QosClass::kSysRead) {
      break;
    }
  }
  const QosWeights defaults;
  EXPECT_LE(position, static_cast<size_t>(defaults.weights[2] + defaults.weights[3]));
}

TEST(QosSchedulerTest, LowPriorityIsNeverStarved) {
  // Keep sys traffic backlogged; maintenance must still get its weight share.
  QosScheduler sched(/*qos_enabled=*/true, QosWeights{});
  uint64_t seq = 0;
  for (int i = 0; i < 100; ++i) {
    sched.Enqueue(MakePending(QosClass::kSysRead, seq++));
  }
  sched.Enqueue(MakePending(QosClass::kMaintenance, seq++));
  bool maintenance_served = false;
  for (int i = 0; i < 30 && !maintenance_served; ++i) {
    maintenance_served = sched.Next()->cls == QosClass::kMaintenance;
  }
  EXPECT_TRUE(maintenance_served);
}

TEST(QosSchedulerTest, AdmissionCapsBulkAtHalfDepth) {
  QosScheduler sched(/*qos_enabled=*/true, QosWeights{});
  const size_t depth = 8;
  size_t admitted = 0;
  while (sched.HasRoom(QosClass::kBulk, depth)) {
    sched.Enqueue(MakePending(QosClass::kBulk, admitted++));
  }
  EXPECT_EQ(admitted, depth / 2);
  EXPECT_TRUE(sched.HasRoom(QosClass::kSysRead, depth));  // sys unaffected
}

TEST(QosSchedulerTest, TakeAdjacentMatchesClassOpLbaHandle) {
  QosScheduler sched(/*qos_enabled=*/true, QosWeights{});
  sched.Enqueue(MakePending(QosClass::kBulk, 0, ServeOp::kRead, 10));
  sched.Enqueue(MakePending(QosClass::kBulk, 1, ServeOp::kWrite, 11));  // wrong op
  sched.Enqueue(MakePending(QosClass::kBulk, 2, ServeOp::kRead, 11));   // match
  auto taken = sched.TakeAdjacent(QosClass::kBulk, ServeOp::kRead, 11, PlacementHandle(), 32);
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->seq, 2u);
  EXPECT_EQ(sched.size(), 2u);
  // No further adjacent read at 11.
  EXPECT_FALSE(
      sched.TakeAdjacent(QosClass::kBulk, ServeOp::kRead, 11, PlacementHandle(), 32).has_value());
}

// --- Wire protocol ----------------------------------------------------------

TEST(WireTest, RequestRoundTrip) {
  Frame frame;
  frame.type = FrameType::kWrite;
  frame.lba = 0x0123456789abcdefull;
  frame.count = 3;
  frame.handle_slot = 5;
  frame.payload = {1, 2, 3, 4, 5, 6};
  std::vector<uint8_t> bytes;
  AppendFrame(bytes, frame);
  ASSERT_EQ(bytes.size(), kWireHeaderSize + 6);

  size_t consumed = 0;
  auto parsed = ParseFrame(bytes, &consumed);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(parsed.value().type, FrameType::kWrite);
  EXPECT_FALSE(parsed.value().reply);
  EXPECT_EQ(parsed.value().lba, frame.lba);
  EXPECT_EQ(parsed.value().count, 3u);
  EXPECT_EQ(parsed.value().handle_slot, 5u);
  EXPECT_EQ(parsed.value().payload, frame.payload);
}

TEST(WireTest, ReplyRoundTripCarriesStatusAndDegraded) {
  Frame frame;
  frame.type = FrameType::kRead;
  frame.reply = true;
  frame.status = StatusCode::kDataLoss;
  frame.degraded = true;
  frame.payload = {9, 9};
  std::vector<uint8_t> bytes;
  AppendFrame(bytes, frame);
  size_t consumed = 0;
  auto parsed = ParseFrame(bytes, &consumed);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().reply);
  EXPECT_EQ(parsed.value().status, StatusCode::kDataLoss);
  EXPECT_TRUE(parsed.value().degraded);
}

TEST(WireTest, IncompleteBytesAreRetryableNotMalformed) {
  Frame frame;
  frame.type = FrameType::kTrim;
  frame.lba = 42;
  std::vector<uint8_t> bytes;
  AppendFrame(bytes, frame);
  for (size_t len = 0; len < bytes.size(); ++len) {
    size_t consumed = 0;
    auto parsed = ParseFrame(std::span<const uint8_t>(bytes.data(), len), &consumed);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kUnavailable) << "prefix length " << len;
  }
}

TEST(WireTest, MalformedHeadersAreRejected) {
  Frame frame;
  frame.type = FrameType::kRead;
  std::vector<uint8_t> good;
  AppendFrame(good, frame);

  auto expect_invalid = [](std::vector<uint8_t> bytes, const char* what) {
    size_t consumed = 0;
    auto parsed = ParseFrame(bytes, &consumed);
    ASSERT_FALSE(parsed.ok()) << what;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << what;
  };

  std::vector<uint8_t> bad = good;
  bad[0] = 'X';
  expect_invalid(bad, "bad magic");

  bad = good;
  bad[2] = 99;
  expect_invalid(bad, "bad version");

  bad = good;
  bad[3] = 0x7f;  // not a FrameType
  expect_invalid(bad, "unknown type");

  bad = good;
  bad[4] = 200;  // not a StatusCode
  expect_invalid(bad, "unknown status");

  bad = good;
  bad[5] |= 0x02;  // reserved flag bit
  expect_invalid(bad, "reserved flag bits");

  bad = good;
  bad[6] = 1;  // reserved header byte
  expect_invalid(bad, "reserved bytes");

  bad = good;
  bad[18] = 0xff;  // payload_len ~16MiB > kMaxFramePayload
  expect_invalid(bad, "oversized payload");

  bad = good;
  bad[22] = 0xff;  // count > kMaxFrameCount
  expect_invalid(bad, "oversized count");

  bad = good;
  bad[5] |= 0x01;  // degraded flag on a request
  expect_invalid(bad, "degraded request");
}

TEST(WireTest, SpecCodecRoundTrip) {
  PlacementSpec spec(Durability::kDegradable, LifetimeHint::kShort, UpdateFrequency::kFrequent,
                     "thumbs");
  auto decoded = DecodeSpec(EncodeSpec(spec));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().durability, Durability::kDegradable);
  EXPECT_EQ(decoded.value().lifetime, LifetimeHint::kShort);
  EXPECT_EQ(decoded.value().update_frequency, UpdateFrequency::kFrequent);
  EXPECT_EQ(decoded.value().label, "thumbs");

  EXPECT_EQ(DecodeSpec(std::vector<uint8_t>{0, 1}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeSpec(std::vector<uint8_t>{9, 0, 0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, FuzzedBytesNeverParseOutOfBounds) {
  // Seeded adversarial streams: random bytes, and random corruptions of a
  // valid frame. The parser must always answer Ok / kUnavailable /
  // kInvalidArgument without reading past the buffer (ASan/UBSan enforce
  // the memory-safety half in CI).
  Rng rng(DeriveSeed({0x66757a7aull /* "fuzz" */}));
  Frame valid;
  valid.type = FrameType::kWrite;
  valid.payload.assign(32, 0xab);
  std::vector<uint8_t> seedbytes;
  AppendFrame(seedbytes, valid);

  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> bytes;
    if (iter % 2 == 0) {
      bytes.resize(rng.NextBounded(96));
      for (auto& b : bytes) {
        b = static_cast<uint8_t>(rng.NextU64());
      }
    } else {
      bytes = seedbytes;
      const size_t flips = 1 + rng.NextBounded(4);
      for (size_t f = 0; f < flips; ++f) {
        bytes[rng.NextBounded(bytes.size())] ^= static_cast<uint8_t>(1 + rng.NextU64() % 255);
      }
    }
    size_t consumed = 0;
    auto parsed = ParseFrame(bytes, &consumed);
    if (parsed.ok()) {
      EXPECT_LE(consumed, bytes.size());
    } else {
      EXPECT_TRUE(parsed.status().code() == StatusCode::kUnavailable ||
                  parsed.status().code() == StatusCode::kInvalidArgument)
          << parsed.status().ToString();
    }
  }
}

// --- AsyncBlockService (pump mode) ------------------------------------------

SosDeviceConfig SmallDeviceConfig(uint64_t seed) {
  SosDeviceConfig config;
  config.nand.num_blocks = 48;
  config.nand.wordlines_per_block = 8;
  config.nand.page_size_bytes = 512;
  config.nand.seed = seed;
  config.nand.store_payloads = true;
  config.spare_ecc = EccPreset::kWeakBch;  // checkable degradable reads
  return config;
}

std::vector<uint8_t> FillPage(uint64_t lba, uint32_t version) {
  return std::vector<uint8_t>(512, static_cast<uint8_t>(lba * 37 + version * 101 + 1));
}

TEST(ServeServiceTest, PumpModeReadYourWrites) {
  SimClock clock;
  SosDevice device(SmallDeviceConfig(3), &clock);
  AsyncBlockService service(&device, &clock, ServeConfig{});
  InProcessClient client(&service);

  auto handle = client.OpenPlacement({Durability::kCritical});
  ASSERT_TRUE(handle.ok());

  for (uint64_t lba = 0; lba < 16; ++lba) {
    ASSERT_TRUE(client.Write(lba, FillPage(lba, 1), handle.value()).ok());
  }
  for (uint64_t lba = 0; lba < 16; ++lba) {
    auto read = client.Read(lba, handle.value());
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value().data, FillPage(lba, 1)) << "lba " << lba;
  }
  // Overwrite, then re-read: latest version wins.
  ASSERT_TRUE(client.Write(5, FillPage(5, 2), handle.value()).ok());
  EXPECT_EQ(client.Read(5, handle.value()).value().data, FillPage(5, 2));

  EXPECT_EQ(client.Read(4000, PlacementHandle()).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(client.Trim(5).ok());
  EXPECT_EQ(client.Read(5, PlacementHandle()).status().code(), StatusCode::kNotFound);

  auto described = client.DescribePlacement(handle.value());
  ASSERT_TRUE(described.ok());
  EXPECT_EQ(described.value().durability, Durability::kCritical);
  EXPECT_TRUE(client.Flush().ok());
  EXPECT_TRUE(client.ClosePlacement(handle.value()).ok());

  const ServeStats stats = service.Stats();
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_GT(stats.per_class[0].completed, 0u);  // sys reads
  EXPECT_GT(stats.per_class[1].completed, 0u);  // sys writes
}

TEST(ServeServiceTest, ClassificationFollowsHandleDurability) {
  SimClock clock;
  SosDevice device(SmallDeviceConfig(4), &clock);
  AsyncBlockService service(&device, &clock, ServeConfig{});
  InProcessClient client(&service);

  auto critical = client.OpenPlacement({Durability::kCritical});
  auto degradable = client.OpenPlacement({Durability::kDegradable});
  ASSERT_TRUE(critical.ok());
  ASSERT_TRUE(degradable.ok());
  ASSERT_TRUE(client.Write(1, FillPage(1, 1), critical.value()).ok());
  ASSERT_TRUE(client.Write(2, FillPage(2, 1), degradable.value()).ok());
  ASSERT_TRUE(client.Read(1, critical.value()).ok());
  ASSERT_TRUE(client.Read(2, degradable.value()).ok());

  const ServeStats stats = service.Stats();
  EXPECT_EQ(stats.per_class[static_cast<int>(QosClass::kSysWrite)].completed, 1u);
  EXPECT_EQ(stats.per_class[static_cast<int>(QosClass::kSysRead)].completed, 1u);
  EXPECT_EQ(stats.per_class[static_cast<int>(QosClass::kBulk)].completed, 2u);
}

TEST(ServeServiceTest, AdjacentReadsCoalesceIntoOneBatch) {
  SimClock clock;
  SosDevice device(SmallDeviceConfig(5), &clock);
  AsyncBlockService service(&device, &clock, ServeConfig{});
  InProcessClient client(&service);
  auto handle = client.OpenPlacement({Durability::kCritical});
  ASSERT_TRUE(handle.ok());
  for (uint64_t lba = 0; lba < 8; ++lba) {
    ASSERT_TRUE(client.Write(lba, FillPage(lba, 1), handle.value()).ok());
  }
  const uint64_t batches_before = service.Stats().batches;

  auto batch = client.ReadBatch(0, 8, handle.value());
  ASSERT_TRUE(batch.ok());
  for (uint64_t lba = 0; lba < 8; ++lba) {
    EXPECT_EQ(batch.value()[lba].data, FillPage(lba, 1)) << "lba " << lba;
  }
  const ServeStats stats = service.Stats();
  EXPECT_EQ(stats.batches, batches_before + 1);  // one coalesced dispatch
  EXPECT_GE(stats.coalesced, 7u);
}

TEST(ServeServiceTest, BatchAndSerialPathsReturnIdenticalData) {
  // Same seed, two devices: one written/read through coalesced batches, one
  // through the serial device API. Every logical block must match bit for
  // bit -- the coalescer may change op grouping but never content.
  SimClock clock_a;
  SosDevice device_a(SmallDeviceConfig(6), &clock_a);
  AsyncBlockService service(&device_a, &clock_a, ServeConfig{});
  InProcessClient client(&service);
  auto handle_a = client.OpenPlacement({Durability::kCritical});
  ASSERT_TRUE(handle_a.ok());

  SimClock clock_b;
  SosDevice device_b(SmallDeviceConfig(6), &clock_b);
  auto handle_b = device_b.OpenPlacement({Durability::kCritical});
  ASSERT_TRUE(handle_b.ok());

  for (uint64_t lba = 0; lba < 24; ++lba) {
    const auto page = FillPage(lba, 7);
    ASSERT_TRUE(client.Write(lba, page, handle_a.value()).ok());
    ASSERT_TRUE(device_b.Write(lba, page, handle_b.value()).ok());
  }
  auto batched = client.ReadBatch(0, 24, handle_a.value());
  ASSERT_TRUE(batched.ok());
  for (uint64_t lba = 0; lba < 24; ++lba) {
    auto serial = device_b.Read(lba);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(batched.value()[lba].data, serial.value().data) << "lba " << lba;
  }
}

TEST(ServeServiceTest, ErrorsPropagateThroughFutures) {
  SimClock clock;
  SosDevice device(SmallDeviceConfig(7), &clock);
  AsyncBlockService service(&device, &clock, ServeConfig{});
  InProcessClient client(&service);

  // Write without an open handle.
  EXPECT_EQ(client.Write(0, FillPage(0, 1), PlacementHandle()).code(),
            StatusCode::kInvalidArgument);
  // Describe of a never-opened slot.
  EXPECT_EQ(client.DescribePlacement(PlacementHandle(3)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Stats().per_class[static_cast<int>(QosClass::kBulk)].errors, 1u);
}

TEST(ServeServiceTest, SubmitAfterShutdownResolvesUnavailable) {
  SimClock clock;
  SosDevice device(SmallDeviceConfig(8), &clock);
  AsyncBlockService service(&device, &clock, ServeConfig{});
  service.Shutdown();
  ServeRequest req;
  req.op = ServeOp::kRead;
  auto response = service.Submit(std::move(req)).get();
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.Stats().rejected, 1u);
}

TEST(ServeServiceTest, LatencyIsSimTimeNotWallTime) {
  SimClock clock;
  SosDevice device(SmallDeviceConfig(9), &clock);
  AsyncBlockService service(&device, &clock, ServeConfig{});
  InProcessClient client(&service);
  auto handle = client.OpenPlacement({Durability::kCritical});
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(client.Write(0, FillPage(0, 1), handle.value()).ok());
  ASSERT_TRUE(client.Read(0, handle.value()).ok());
  const LatencySummary reads = service.Latency(QosClass::kSysRead);
  EXPECT_EQ(reads.count, 1u);
  EXPECT_GT(reads.p50, 0.0);  // NAND read advanced the sim clock
  EXPECT_LE(reads.p50, reads.p999);
}

// --- Socket transport -------------------------------------------------------

struct SocketHarness {
  SimClock clock;
  std::unique_ptr<SosDevice> device;
  std::unique_ptr<AsyncBlockService> service;
  std::unique_ptr<SosdServer> server;
  std::thread server_thread;
  int client_fd = -1;

  explicit SocketHarness(uint64_t seed, size_t workers = 0) {
    device = std::make_unique<SosDevice>(SmallDeviceConfig(seed), &clock);
    ServeConfig config;
    config.workers = workers;
    service = std::make_unique<AsyncBlockService>(device.get(), &clock, config);
    server = std::make_unique<SosdServer>(service.get());
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    client_fd = fds[0];
    const int server_fd = fds[1];
    server_thread = std::thread([this, server_fd] {
      server->ServeConnection(server_fd);
      ::close(server_fd);
    });
  }

  ~SocketHarness() {
    server_thread.join();
    service->Shutdown();
  }
};

TEST(SosdServerTest, SocketClientRoundTrip) {
  SocketHarness harness(21);
  {
    SocketClient client(harness.client_fd);  // closes fd -> server exits
    auto handle = client.OpenPlacement({Durability::kCritical, LifetimeHint::kLong});
    ASSERT_TRUE(handle.ok());

    for (uint64_t lba = 0; lba < 8; ++lba) {
      ASSERT_TRUE(client.Write(lba, FillPage(lba, 1), handle.value()).ok());
    }
    auto one = client.Read(3, handle.value());
    ASSERT_TRUE(one.ok());
    EXPECT_EQ(one.value().data, FillPage(3, 1));

    auto batch = client.ReadBatch(0, 8, handle.value());
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch.value().size(), 8u);
    for (uint64_t lba = 0; lba < 8; ++lba) {
      EXPECT_EQ(batch.value()[lba].data, FillPage(lba, 1));
    }

    auto described = client.DescribePlacement(handle.value());
    ASSERT_TRUE(described.ok());
    EXPECT_EQ(described.value().lifetime, LifetimeHint::kLong);

    EXPECT_EQ(client.Read(4000, PlacementHandle()).status().code(), StatusCode::kNotFound);
    ASSERT_TRUE(client.Trim(3).ok());
    EXPECT_EQ(client.Read(3, PlacementHandle()).status().code(), StatusCode::kNotFound);
    EXPECT_TRUE(client.Flush().ok());
    EXPECT_TRUE(client.ClosePlacement(handle.value()).ok());
  }
}

TEST(SosdServerTest, SocketClientAgainstAsyncWorkers) {
  SocketHarness harness(22, /*workers=*/2);
  {
    SocketClient client(harness.client_fd);
    auto handle = client.OpenPlacement({Durability::kCritical});
    ASSERT_TRUE(handle.ok());
    for (uint64_t lba = 0; lba < 12; ++lba) {
      ASSERT_TRUE(client.Write(lba, FillPage(lba, 2), handle.value()).ok());
    }
    auto batch = client.ReadBatch(0, 12, handle.value());
    ASSERT_TRUE(batch.ok());
    for (uint64_t lba = 0; lba < 12; ++lba) {
      EXPECT_EQ(batch.value()[lba].data, FillPage(lba, 2));
    }
  }
}

TEST(SosdServerTest, MalformedFrameGetsErrorReplyAndDisconnect) {
  SocketHarness harness(23);
  std::vector<uint8_t> garbage(64, 0x5a);  // wrong magic
  ASSERT_EQ(::write(harness.client_fd, garbage.data(), garbage.size()),
            static_cast<ssize_t>(garbage.size()));

  // The server answers with one kInvalidArgument error reply, then closes.
  std::vector<uint8_t> buffer;
  uint8_t chunk[256];
  for (;;) {
    const ssize_t n = ::read(harness.client_fd, chunk, sizeof(chunk));
    if (n <= 0) {
      break;
    }
    buffer.insert(buffer.end(), chunk, chunk + n);
  }
  size_t consumed = 0;
  auto reply = ParseFrame(buffer, &consumed);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().reply);
  EXPECT_EQ(reply.value().status, StatusCode::kInvalidArgument);
  ::close(harness.client_fd);
}

TEST(SosdServerTest, FuzzedStreamsNeverWedgeTheServer) {
  // Adversarial connection fuzz: each round opens a fresh socketpair, sends
  // a seeded mix of garbage and corrupted frames, and the server must
  // terminate the connection (never hang, never crash).
  Rng rng(DeriveSeed({0x736f636bull /* "sock" */}));
  SimClock clock;
  SosDevice device(SmallDeviceConfig(24), &clock);
  AsyncBlockService service(&device, &clock, ServeConfig{});
  SosdServer server(&service);

  Frame valid;
  valid.type = FrameType::kWrite;
  valid.payload.assign(16, 1);
  std::vector<uint8_t> seedbytes;
  AppendFrame(seedbytes, valid);

  for (int round = 0; round < 40; ++round) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::thread server_thread([&server, fd = fds[1]] {
      server.ServeConnection(fd);
      ::close(fd);
    });
    std::vector<uint8_t> bytes = seedbytes;
    const size_t flips = 1 + rng.NextBounded(6);
    for (size_t f = 0; f < flips; ++f) {
      bytes[rng.NextBounded(bytes.size())] ^= static_cast<uint8_t>(1 + rng.NextU64() % 255);
    }
    IgnoreResult(::write(fds[0], bytes.data(), bytes.size()));
    ::shutdown(fds[0], SHUT_WR);
    // Drain whatever the server replies until it closes its end.
    uint8_t sink[256];
    while (::read(fds[0], sink, sizeof(sink)) > 0) {
    }
    ::close(fds[0]);
    server_thread.join();
  }
}

}  // namespace
}  // namespace sos::serve
