// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Tests for the real BCH codec: exhaustive single/low-weight correction,
// randomized property sweeps across (m, t), detection beyond capability, and
// agreement with the analytic capability model.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/ecc/bch.h"
#include "src/ecc/ecc_scheme.h"

namespace sos {
namespace {

std::vector<uint8_t> RandomBits(int count, Rng& rng) {
  std::vector<uint8_t> bits(static_cast<size_t>(count));
  for (auto& b : bits) {
    b = static_cast<uint8_t>(rng.NextBounded(2));
  }
  return bits;
}

void FlipDistinct(std::vector<uint8_t>& bits, int count, Rng& rng) {
  std::vector<size_t> chosen;
  while (static_cast<int>(chosen.size()) < count) {
    const size_t pos = static_cast<size_t>(rng.NextBounded(bits.size()));
    if (std::find(chosen.begin(), chosen.end(), pos) == chosen.end()) {
      chosen.push_back(pos);
      bits[pos] ^= 1;
    }
  }
}

TEST(BchTest, CodeParameters) {
  // Classic values: BCH(15,7,t=2), BCH(31,21,t=2), BCH(63,45,t=3),
  // BCH(255,231,t=3).
  EXPECT_EQ(BchCode(4, 2).k(), 7);
  EXPECT_EQ(BchCode(5, 2).k(), 21);
  EXPECT_EQ(BchCode(6, 3).k(), 45);
  EXPECT_EQ(BchCode(8, 3).k(), 231);
}

TEST(BchTest, CleanRoundtrip) {
  Rng rng(1);
  const BchCode code(6, 3);
  for (int trial = 0; trial < 50; ++trial) {
    const auto data = RandomBits(code.k(), rng);
    const auto codeword = code.Encode(data);
    EXPECT_EQ(static_cast<int>(codeword.size()), code.n());
    const auto decoded = code.Decode(codeword);
    ASSERT_TRUE(decoded.ok);
    EXPECT_EQ(decoded.errors_corrected, 0);
    EXPECT_EQ(decoded.data_bits, data);
  }
}

TEST(BchTest, CorrectsEverySingleBit) {
  Rng rng(2);
  const BchCode code(5, 2);  // n=31: exhaustive is cheap
  const auto data = RandomBits(code.k(), rng);
  const auto codeword = code.Encode(data);
  for (int bit = 0; bit < code.n(); ++bit) {
    auto corrupted = codeword;
    corrupted[static_cast<size_t>(bit)] ^= 1;
    const auto decoded = code.Decode(corrupted);
    ASSERT_TRUE(decoded.ok) << "bit " << bit;
    EXPECT_EQ(decoded.errors_corrected, 1);
    EXPECT_EQ(decoded.data_bits, data);
  }
}

// Property sweep: for every (m, t) configuration, random error patterns of
// weight <= t always decode back to the original data.
struct BchParam {
  int m;
  int t;
};

class BchPropertyTest : public ::testing::TestWithParam<BchParam> {};

TEST_P(BchPropertyTest, CorrectsUpToTErrors) {
  const BchCode code(GetParam().m, GetParam().t);
  Rng rng(DeriveSeed({static_cast<uint64_t>(GetParam().m),
                      static_cast<uint64_t>(GetParam().t)}));
  for (int trial = 0; trial < 30; ++trial) {
    const auto data = RandomBits(code.k(), rng);
    const auto codeword = code.Encode(data);
    const int errors = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(code.t()))) + 1;
    auto corrupted = codeword;
    FlipDistinct(corrupted, errors, rng);
    const auto decoded = code.Decode(corrupted);
    ASSERT_TRUE(decoded.ok) << "m=" << GetParam().m << " t=" << GetParam().t
                            << " errors=" << errors << " trial=" << trial;
    EXPECT_EQ(decoded.errors_corrected, errors);
    EXPECT_EQ(decoded.data_bits, data);
  }
}

TEST_P(BchPropertyTest, BoundedDistanceBehaviourBeyondCapability) {
  // Beyond t errors a bounded-distance decoder either flags failure or
  // miscorrects to the *nearest* valid codeword -- in which case it must
  // report having flipped at most t bits. It must never claim success while
  // having applied more than t corrections.
  const BchCode code(GetParam().m, GetParam().t);
  Rng rng(DeriveSeed({static_cast<uint64_t>(GetParam().m),
                      static_cast<uint64_t>(GetParam().t), 99}));
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    const auto data = RandomBits(code.k(), rng);
    auto corrupted = code.Encode(data);
    FlipDistinct(corrupted, 2 * code.t() + 3, rng);
    const auto decoded = code.Decode(corrupted);
    if (decoded.ok) {
      EXPECT_LE(decoded.errors_corrected, code.t());
      // A "successful" heavy-corruption decode can only be a miscorrection;
      // the data cannot match the original (2t+3 > 2t flips cannot cancel
      // back to within t of the true codeword).
      EXPECT_NE(decoded.data_bits, data);
    }
  }
}

TEST(BchTest, LongCodesMostlyDetectHeavyCorruption) {
  // With n=1023 and t=4 the codeword space is sparse: random heavy patterns
  // land between codewords and the decoder flags them.
  const BchCode code(10, 4);
  Rng rng(11);
  int flagged = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    const auto data = RandomBits(code.k(), rng);
    auto corrupted = code.Encode(data);
    FlipDistinct(corrupted, 3 * code.t(), rng);
    if (!code.Decode(corrupted).ok) {
      ++flagged;
    }
  }
  EXPECT_GT(flagged, trials * 8 / 10);
}

INSTANTIATE_TEST_SUITE_P(Configs, BchPropertyTest,
                         ::testing::Values(BchParam{4, 1}, BchParam{4, 2}, BchParam{5, 2},
                                           BchParam{5, 3}, BchParam{6, 2}, BchParam{6, 4},
                                           BchParam{8, 2}, BchParam{8, 5}, BchParam{10, 4}),
                         [](const auto& param_info) {
                           return "m" + std::to_string(param_info.param.m) + "t" +
                                  std::to_string(param_info.param.t);
                         });

TEST(BchTest, AgreesWithCapabilityModel) {
  // The analytic EccScheme says a t=4 code over ~1 KiB-ish codewords fails
  // with probability ~binomial tail beyond 4; the real decoder's empirical
  // failure rate at a matching RBER must agree in order of magnitude.
  const BchCode code(10, 4);  // n=1023 bits
  Rng rng(7);
  const double rber = 2e-3;  // ~2 expected errors per codeword
  int failures = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    const auto data = RandomBits(code.k(), rng);
    auto corrupted = code.Encode(data);
    int flips = 0;
    for (auto& bit : corrupted) {
      if (rng.NextBool(rber)) {
        bit ^= 1;
        ++flips;
      }
    }
    const auto decoded = code.Decode(corrupted);
    if (!(decoded.ok && decoded.data_bits == data)) {
      ++failures;
      EXPECT_GT(flips, code.t());  // never fail within capability
    }
  }
  EccScheme analytic;
  analytic.codeword_bytes = 1023 / 8;
  analytic.correctable_bits = 4;
  const double predicted = analytic.CodewordFailureProb(rber);
  const double measured = static_cast<double>(failures) / trials;
  EXPECT_NEAR(measured, predicted, std::max(0.03, predicted * 1.0));
}

}  // namespace
}  // namespace sos
