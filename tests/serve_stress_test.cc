// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Concurrent-client stress harness for AsyncBlockService (the sosd
// verification co-headline): N >= 8 client threads drive seeded op streams
// against one service in async mode (4 workers, QoS on), each over a
// disjoint LBA range, with a per-thread oracle of acked writes.
//
// Checked properties:
//   - per-LBA read-your-writes: after a write's future resolves ok, every
//     later read of that LBA by its owner returns exactly the acked bytes
//     (payloads encode lba+version, so a stale or cross-wired page is
//     detected, not just a torn one);
//   - acked-write durability: after the final Drain(), every acked critical
//     write in every thread's oracle reads back byte-exact;
//   - trim semantics: an acked trim makes the LBA kNotFound until rewritten;
//   - accounting: completed == submitted, responses never vanish, and a
//     Shutdown() racing in-flight submissions resolves every future.
//
// The suite is run under TSan in CI (serve-smoke): the assertions prove
// linearizable per-LBA behavior, TSan proves the implementation gets there
// without data races.

#include <gtest/gtest.h>

#include <future>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/serve/service.h"
#include "src/sos/sos_device.h"

namespace sos::serve {
namespace {

SosDeviceConfig StressDeviceConfig(uint64_t seed) {
  SosDeviceConfig config;
  config.nand.num_blocks = 96;
  config.nand.wordlines_per_block = 8;
  config.nand.page_size_bytes = 512;
  config.nand.seed = seed;
  config.nand.store_payloads = true;
  config.spare_ecc = EccPreset::kWeakBch;
  return config;
}

// Payload fingerprint: every byte derives from (lba, version), so reading a
// different LBA's page or an older version is visible in the first byte.
std::vector<uint8_t> FillPage(uint64_t lba, uint32_t version) {
  std::vector<uint8_t> page(512);
  for (size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<uint8_t>(lba * 37 + version * 101 + i * 13 + 1);
  }
  return page;
}

struct ClientOutcome {
  // lba -> last acked version (erased on acked trim).
  std::map<uint64_t, uint32_t> oracle;
  // LBAs whose last write failed: content is unspecified until re-acked.
  std::set<uint64_t> uncertain;
  uint64_t ops = 0;
  uint64_t failed_writes = 0;
};

// One client thread's seeded op stream. Thread t owns LBAs
// [t*range, (t+1)*range); critical threads exercise SYS, bulk threads the
// degradable path, creating cross-class QoS pressure.
ClientOutcome RunClient(AsyncBlockService* service, PlacementHandle handle, bool critical,
                        uint64_t lba_base, uint64_t range, uint64_t seed) {
  Rng rng(DeriveSeed({seed, lba_base, 0x73727673ull /* "srvs" */}));
  ClientOutcome out;
  std::map<uint64_t, uint32_t> version;

  for (int round = 0; round < 12; ++round) {
    // Burst of async writes to distinct LBAs, then wait for all acks. The
    // future-wait establishes the happens-before edge read-your-writes is
    // then checked against.
    std::vector<std::pair<uint64_t, uint32_t>> issued;
    std::vector<std::future<ServeResponse>> futures;
    std::set<uint64_t> used;
    for (int w = 0; w < 6; ++w) {
      const uint64_t lba = lba_base + rng.NextBounded(range);
      if (!used.insert(lba).second) {
        continue;  // one in-flight write per LBA, else ack order is ambiguous
      }
      const uint32_t v = ++version[lba];
      ServeRequest req;
      req.op = ServeOp::kWrite;
      req.lba = lba;
      req.data = FillPage(lba, v);
      req.handle = handle;
      issued.emplace_back(lba, v);
      futures.push_back(service->Submit(std::move(req)));
      ++out.ops;
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      const ServeResponse resp = futures[i].get();
      const uint64_t lba = issued[i].first;
      if (resp.status.ok()) {
        out.oracle[lba] = issued[i].second;
        out.uncertain.erase(lba);
      } else {
        ++out.failed_writes;
        out.oracle.erase(lba);
        out.uncertain.insert(lba);
      }
    }

    // Occasional trim of an acked LBA.
    if (round % 4 == 3 && !out.oracle.empty()) {
      const uint64_t lba = out.oracle.begin()->first;
      ServeRequest req;
      req.op = ServeOp::kTrim;
      req.lba = lba;
      const ServeResponse resp = service->Submit(std::move(req)).get();
      ++out.ops;
      if (resp.status.ok()) {
        out.oracle.erase(lba);
        version.erase(lba);  // next write restarts the version chain
      }
    }

    // Reads verify read-your-writes against the oracle.
    for (int r = 0; r < 6; ++r) {
      const uint64_t lba = lba_base + rng.NextBounded(range);
      ServeRequest req;
      req.op = ServeOp::kRead;
      req.lba = lba;
      req.handle = handle;
      const ServeResponse resp = service->Submit(std::move(req)).get();
      ++out.ops;
      if (out.uncertain.contains(lba)) {
        continue;  // last write failed; content unspecified
      }
      auto expected = out.oracle.find(lba);
      if (expected == out.oracle.end()) {
        EXPECT_EQ(resp.status.code(), StatusCode::kNotFound) << "lba " << lba;
        continue;
      }
      EXPECT_TRUE(resp.status.ok()) << "lba " << lba << ": " << resp.status.ToString();
      if (resp.status.ok() && (critical || !resp.degraded)) {
        EXPECT_EQ(resp.data, FillPage(lba, expected->second))
            << "lba " << lba << " version " << expected->second;
      }
      if (critical && resp.status.ok()) {
        EXPECT_FALSE(resp.degraded) << "critical read degraded at lba " << lba;
      }
    }
  }
  return out;
}

TEST(ServeStressTest, ConcurrentClientsKeepReadYourWrites) {
  constexpr size_t kClients = 8;
  constexpr uint64_t kRange = 20;

  SimClock clock;
  SosDevice device(StressDeviceConfig(31), &clock);
  ServeConfig config;
  config.workers = 4;
  config.qos = true;
  AsyncBlockService service(&device, &clock, config);

  // Six critical (SYS) clients + two bulk (degradable) clients for QoS
  // pressure; each owns a disjoint LBA range.
  std::vector<PlacementHandle> handles;
  std::vector<bool> critical;
  for (size_t t = 0; t < kClients; ++t) {
    const bool is_critical = t < 6;
    auto opened = service.OpenPlacement(
        {is_critical ? Durability::kCritical : Durability::kDegradable});
    ASSERT_TRUE(opened.ok());
    handles.push_back(opened.value());
    critical.push_back(is_critical);
  }

  std::vector<ClientOutcome> outcomes(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      outcomes[t] = RunClient(&service, handles[t], critical[t], t * kRange, kRange,
                              /*seed=*/31);
    });
  }
  for (std::thread& c : clients) {
    c.join();
  }
  service.Drain();

  // Global audit: every acked write in every oracle reads back byte-exact
  // (for critical clients; bulk content is checked when undegraded).
  uint64_t audited = 0;
  for (size_t t = 0; t < kClients; ++t) {
    for (const auto& [lba, version] : outcomes[t].oracle) {
      ServeRequest req;
      req.op = ServeOp::kRead;
      req.lba = lba;
      req.handle = handles[t];
      const ServeResponse resp = service.Submit(std::move(req)).get();
      ASSERT_TRUE(resp.status.ok())
          << "acked write lost: client " << t << " lba " << lba << ": "
          << resp.status.ToString();
      if (critical[t]) {
        ASSERT_FALSE(resp.degraded) << "acked SYS write degraded: lba " << lba;
        ASSERT_EQ(resp.data, FillPage(lba, version))
            << "acked SYS write corrupted: client " << t << " lba " << lba;
      } else if (!resp.degraded) {
        EXPECT_EQ(resp.data, FillPage(lba, version)) << "bulk lba " << lba;
      }
      ++audited;
    }
  }
  EXPECT_GT(audited, 0u);

  const ServeStats stats = service.Stats();
  uint64_t client_ops = audited;  // the audit reads above
  for (const ClientOutcome& out : outcomes) {
    client_ops += out.ops;
  }
  EXPECT_EQ(stats.submitted, client_ops);
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_GT(stats.per_class[static_cast<int>(QosClass::kSysRead)].completed, 0u);
  EXPECT_GT(stats.per_class[static_cast<int>(QosClass::kBulk)].completed, 0u);
}

TEST(ServeStressTest, ShutdownRacingSubmissionsResolvesEveryFuture) {
  SimClock clock;
  SosDevice device(StressDeviceConfig(32), &clock);
  ServeConfig config;
  config.workers = 2;
  AsyncBlockService service(&device, &clock, config);
  auto handle = service.OpenPlacement({Durability::kCritical});
  ASSERT_TRUE(handle.ok());

  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<ServeResponse>>> futures(4);
  for (size_t t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        ServeRequest req;
        req.op = i % 2 == 0 ? ServeOp::kWrite : ServeOp::kRead;
        req.lba = static_cast<uint64_t>(t) * 64 + static_cast<uint64_t>(i % 32);
        if (req.op == ServeOp::kWrite) {
          req.data = FillPage(req.lba, 1);
        }
        req.handle = handle.value();
        futures[t].push_back(service.Submit(std::move(req)));
      }
    });
  }
  service.Shutdown();  // races the submitters on purpose
  for (std::thread& s : submitters) {
    s.join();
  }
  // Every future resolves -- either a real response or a clean rejection.
  for (auto& thread_futures : futures) {
    for (auto& f : thread_futures) {
      const ServeResponse resp = f.get();
      EXPECT_TRUE(resp.status.ok() || resp.status.code() == StatusCode::kUnavailable ||
                  resp.status.code() == StatusCode::kNotFound)
          << resp.status.ToString();
    }
  }
  const ServeStats stats = service.Stats();
  EXPECT_EQ(stats.completed, stats.submitted);
}

}  // namespace
}  // namespace sos::serve
