// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Tests for the physical threshold-voltage model and the read-retry path it
// enables.

#include <gtest/gtest.h>

#include "src/flash/nand_device.h"
#include "src/flash/voltage_model.h"
#include "src/ftl/ftl.h"

namespace sos {
namespace {

constexpr CellTech kAllTechs[] = {CellTech::kSlc, CellTech::kMlc, CellTech::kTlc,
                                  CellTech::kQlc, CellTech::kPlc};

PageErrorState FreshState(CellTech mode) {
  PageErrorState state;
  state.mode = mode;
  state.endurance_pec = GetCellTechInfo(mode).rated_endurance_pec;
  return state;
}

// --- Calibration and physics --------------------------------------------------

class VoltageModelTechTest : public ::testing::TestWithParam<CellTech> {};

TEST_P(VoltageModelTechTest, FreshRberMatchesCatalog) {
  const double catalog = GetCellTechInfo(GetParam()).base_rber;
  const double physical = VoltageModel::RberAt(FreshState(GetParam()));
  EXPECT_NEAR(physical, catalog, catalog * 0.05) << CellTechName(GetParam());
}

TEST_P(VoltageModelTechTest, MonotonicInRetention) {
  PageErrorState state = FreshState(GetParam());
  double prev = 0.0;
  for (double years : {0.0, 0.5, 1.0, 3.0, 8.0}) {
    state.retention_years = years;
    const double rber = VoltageModel::RberAt(state);
    EXPECT_GE(rber, prev);
    prev = rber;
  }
}

TEST_P(VoltageModelTechTest, MonotonicInWear) {
  PageErrorState state = FreshState(GetParam());
  state.retention_years = 1.0;
  double prev = 0.0;
  for (double frac : {0.0, 0.3, 0.7, 1.0, 1.5}) {
    state.pec_at_program = static_cast<uint32_t>(frac * state.endurance_pec);
    const double rber = VoltageModel::RberAt(state);
    EXPECT_GE(rber, prev);
    prev = rber;
  }
}

TEST_P(VoltageModelTechTest, RetryLowersRetentionErrors) {
  PageErrorState state = FreshState(GetParam());
  state.retention_years = 3.0;
  const double no_retry = VoltageModel::RberAt(state, 0);
  const double retry1 = VoltageModel::RberAt(state, 1);
  const double retry2 = VoltageModel::RberAt(state, 2);
  EXPECT_LT(retry1, no_retry);
  EXPECT_LE(retry2, retry1);
}

INSTANTIATE_TEST_SUITE_P(AllTechs, VoltageModelTechTest, ::testing::ValuesIn(kAllTechs),
                         [](const auto& param_info) {
                           return std::string(CellTechName(param_info.param));
                         });

TEST(VoltageModelTest, DenserCellsDegradeFasterUnderSameDrift) {
  // Same physical drift, tighter margins: at equal retention the PLC RBER
  // must exceed TLC's by a growing factor.
  PageErrorState tlc = FreshState(CellTech::kTlc);
  PageErrorState plc = FreshState(CellTech::kPlc);
  tlc.retention_years = plc.retention_years = 2.0;
  EXPECT_GT(VoltageModel::RberAt(plc), VoltageModel::RberAt(tlc));
}

TEST(VoltageModelTest, TracksPhenomenologicalModelShape) {
  // The two models must agree on the *shape*: within an order of magnitude
  // across the regimes the simulations visit. (They are calibrated to agree
  // exactly at the fresh point.)
  for (CellTech tech : {CellTech::kTlc, CellTech::kQlc, CellTech::kPlc}) {
    PageErrorState state = FreshState(tech);
    for (double years : {0.5, 1.0, 2.0}) {
      state.retention_years = years;
      const double physical = VoltageModel::RberAt(state);
      const double fitted = ErrorModel::Rber(state);
      EXPECT_LT(physical, fitted * 10.0) << CellTechName(tech) << " @" << years;
      EXPECT_GT(physical, fitted / 10.0) << CellTechName(tech) << " @" << years;
    }
  }
}

TEST(VoltageModelTest, RetryTrackingLevels) {
  EXPECT_DOUBLE_EQ(VoltageModel::RetryTracking(0), 0.0);
  EXPECT_LT(VoltageModel::RetryTracking(1), VoltageModel::RetryTracking(2));
  EXPECT_LT(VoltageModel::RetryTracking(2), VoltageModel::RetryTracking(5));
  EXPECT_LE(VoltageModel::RetryTracking(9), 1.0);
}

TEST(VoltageModelTest, ComputeRberDispatch) {
  PageErrorState state = FreshState(CellTech::kQlc);
  state.retention_years = 1.0;
  EXPECT_DOUBLE_EQ(ComputeRber(ErrorModelKind::kPhenomenological, state, 0),
                   ErrorModel::Rber(state));
  EXPECT_DOUBLE_EQ(ComputeRber(ErrorModelKind::kVoltage, state, 0),
                   VoltageModel::RberAt(state, 0));
  // Phenomenological retry approximates the tracking effect.
  EXPECT_LT(ComputeRber(ErrorModelKind::kPhenomenological, state, 2),
            ComputeRber(ErrorModelKind::kPhenomenological, state, 0));
}

// --- Device + FTL integration --------------------------------------------------

TEST(VoltageDeviceTest, VoltageModeDeviceDegradesOverTime) {
  NandConfig config;
  config.num_blocks = 4;
  config.wordlines_per_block = 4;
  config.page_size_bytes = 4096;
  config.tech = CellTech::kPlc;
  config.error_model = ErrorModelKind::kVoltage;
  SimClock clock;
  NandDevice device(config, &clock);
  ASSERT_TRUE(device.Program({0, 0}, std::vector<uint8_t>(4096, 0xAB)).ok());
  auto fresh = device.Read({0, 0});
  ASSERT_TRUE(fresh.ok());
  clock.Advance(YearsToUs(8.0));
  auto aged = device.Read({0, 0});
  ASSERT_TRUE(aged.ok());
  EXPECT_GT(aged.value().rber, fresh.value().rber);
  EXPECT_GT(aged.value().bit_errors, 0u);
}

TEST(VoltageDeviceTest, RetryReadSeesLowerRber) {
  NandConfig config;
  config.num_blocks = 4;
  config.wordlines_per_block = 4;
  config.page_size_bytes = 4096;
  config.tech = CellTech::kPlc;
  config.error_model = ErrorModelKind::kVoltage;
  SimClock clock;
  NandDevice device(config, &clock);
  ASSERT_TRUE(device.Program({0, 0}, std::vector<uint8_t>(4096, 1)).ok());
  clock.Advance(YearsToUs(5.0));
  auto normal = device.Read({0, 0}, 0);
  auto retried = device.Read({0, 0}, 2);
  ASSERT_TRUE(normal.ok());
  ASSERT_TRUE(retried.ok());
  EXPECT_LT(retried.value().rber, normal.value().rber);
}

TEST(VoltageFtlTest, ReadRetryRecoversEccFailures) {
  // Weak ECC + aged pages: without retry many reads degrade; with retries
  // most recover. Uses the voltage model end to end.
  auto run = [](uint32_t retries) {
    FtlConfig config;
    config.nand.num_blocks = 16;
    config.nand.wordlines_per_block = 8;
    config.nand.page_size_bytes = 4096;
    config.nand.tech = CellTech::kPlc;
    config.nand.seed = 77;
    config.nand.store_payloads = false;
    config.nand.error_model = ErrorModelKind::kVoltage;
    FtlPoolConfig pool;
    pool.name = "MAIN";
    pool.mode = CellTech::kPlc;
    pool.ecc = EccScheme::FromPreset(EccPreset::kWeakBch);
    pool.nominal_retention_years = 20.0;  // no retirement in this test
    pool.retire_rber = 0.4;
    pool.read_retries = retries;
    config.pools = {pool};
    SimClock clock;
    Ftl ftl(config, &clock);
    for (uint64_t lba = 0; lba < 120; ++lba) {
      EXPECT_TRUE(ftl.Write(lba, {}, 0).ok());
    }
    clock.Advance(YearsToUs(6.0));
    uint64_t degraded = 0;
    for (uint64_t lba = 0; lba < 120; ++lba) {
      auto read = ftl.Read(lba);
      EXPECT_TRUE(read.ok());
      degraded += static_cast<uint64_t>(read.ok() && read.value().degraded ? 1 : 0);
    }
    return std::make_pair(degraded, ftl.stats().retry_recoveries());
  };
  const auto [degraded_without, recoveries_without] = run(0);
  const auto [degraded_with, recoveries_with] = run(3);
  EXPECT_EQ(recoveries_without, 0u);
  EXPECT_GT(degraded_without, 0u);
  EXPECT_GT(recoveries_with, 0u);
  EXPECT_LT(degraded_with, degraded_without);
}

}  // namespace
}  // namespace sos
