// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Coverage for remaining public-API corners: the umbrella header compiles
// and works end to end, ECC preset properties sweep, package/device edge
// cases, and FS behaviour after capacity shrink.

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/flash/nand_package.h"
#include "src/sos/sos.h"

namespace sos {
namespace {

// The umbrella header provides the whole minimal-use flow.
TEST(UmbrellaTest, MinimalUseCompilesAndRuns) {
  SimClock clock;
  SosDeviceConfig config;
  config.nand.num_blocks = 32;
  config.nand.wordlines_per_block = 4;
  config.nand.page_size_bytes = 512;
  SosDevice device(config, &clock);
  ExtentFileSystem fs(&device, &clock);
  PlacementDirectory placements(&device);
  FileMeta meta;
  meta.type = FileType::kPhoto;
  meta.path = "dcim/x.jpg";
  meta.size_bytes = kKiB;
  auto id = fs.CreateFile(meta, std::vector<uint8_t>(kKiB, 7),
                          placements.For({Durability::kCritical}).value());
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(fs.ReadFile(id.value()).ok());
  EXPECT_GT(FlashCarbonModel{}.KgPerGb(CellTech::kTlc), 0.0);
}

// --- ECC preset property sweep ------------------------------------------------

class EccPresetTest : public ::testing::TestWithParam<EccPreset> {};

TEST_P(EccPresetTest, UberMonotonicInRber) {
  const EccScheme scheme = EccScheme::FromPreset(GetParam());
  double prev = -1.0;
  for (double rber : {1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
    const double uber = scheme.Uber(rber);
    EXPECT_GE(uber, prev);
    EXPECT_LE(uber, rber + 1e-12);  // ECC never makes things worse in expectation
    prev = uber;
  }
}

TEST_P(EccPresetTest, DecodeZeroErrorsAlwaysClean) {
  const EccScheme scheme = EccScheme::FromPreset(GetParam());
  for (uint32_t page : {512u, 4096u, 16384u}) {
    const DecodeOutcome out = DecodePage(scheme, page, 0, 1);
    EXPECT_TRUE(out.corrected);
    EXPECT_EQ(out.residual_errors, 0u);
  }
}

TEST_P(EccPresetTest, PageFailureMonotonicInPageSize) {
  const EccScheme scheme = EccScheme::FromPreset(GetParam());
  if (scheme.correctable_bits == 0) {
    return;  // kNone: failure prob is degenerate
  }
  const double rber = 1e-3;
  EXPECT_LE(scheme.PageFailureProb(rber, kKiB), scheme.PageFailureProb(rber, 16384) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Presets, EccPresetTest,
                         ::testing::Values(EccPreset::kNone, EccPreset::kWeakBch,
                                           EccPreset::kBch, EccPreset::kLdpc),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case EccPreset::kNone:
                               return "none";
                             case EccPreset::kWeakBch:
                               return "weak";
                             case EccPreset::kBch:
                               return "bch";
                             case EccPreset::kLdpc:
                               return "ldpc";
                           }
                           return "x";
                         });

// --- FS behaviour after capacity shrink ----------------------------------------

TEST(CapacityShrinkTest, FsHonorsShrunkCapacity) {
  // Drive a tiny SPARE-heavy device until retirement shrinks it, then check
  // the FS refuses allocations beyond the new capacity but keeps serving
  // reads of surviving files.
  SimClock clock;
  SosDeviceConfig config;
  config.nand.num_blocks = 32;
  config.nand.wordlines_per_block = 8;
  config.nand.page_size_bytes = 512;
  config.nand.store_payloads = false;
  config.sys_share = 0.25;
  config.spare_retire_rber = 3e-4;  // retire eagerly
  SosDevice device(config, &clock);
  ExtentFileSystem fs(&device, &clock);
  PlacementDirectory placements(&device);
  const PlacementHandle critical = placements.For({Durability::kCritical}).value();
  const PlacementHandle degradable = placements.For({Durability::kDegradable}).value();

  // A keeper file on SYS.
  FileMeta keeper;
  keeper.type = FileType::kDocument;
  keeper.size_bytes = 2048;
  auto keeper_id = fs.CreateFile(keeper, {}, critical);
  ASSERT_TRUE(keeper_id.ok());

  // Churn SPARE until blocks retire.
  Rng rng(3);
  FileMeta junk;
  junk.type = FileType::kCache;
  junk.size_bytes = 4096;
  std::vector<uint64_t> junk_ids;
  for (int i = 0; i < 30000 && device.ftl().stats().retired_blocks() < 4; ++i) {
    if (!junk_ids.empty() && rng.NextBool(0.6)) {
      const size_t idx = static_cast<size_t>(rng.NextBounded(junk_ids.size()));
      IgnoreResult(fs.DeleteFile(junk_ids[idx]));
      junk_ids[idx] = junk_ids.back();
      junk_ids.pop_back();
    } else {
      auto id = fs.CreateFile(junk, {}, degradable);
      if (id.ok()) {
        junk_ids.push_back(id.value());
      }
    }
  }
  ASSERT_GT(device.ftl().stats().retired_blocks(), 0u);
  const FsStats stats = fs.Stats();
  EXPECT_LT(stats.capacity_blocks, device.ftl().nand().config().num_blocks * 40u);
  // The keeper file survived the shrink.
  EXPECT_TRUE(fs.ReadFile(keeper_id.value()).ok());
  EXPECT_TRUE(device.ftl().CheckInvariants().ok());
}

// --- Package / device edge cases -----------------------------------------------

TEST(EdgeCaseTest, RetryOnEcclessPoolIsConsistent) {
  // On a no-ECC pool a retry "recovers" only when the drift-tracked re-read
  // senses zero raw errors -- which is physically legitimate (the re-read
  // simply got every cell right). The stats and the returned flags must
  // stay consistent either way, and nothing may corrupt FTL state.
  SimClock clock;
  FtlConfig config;
  config.nand.num_blocks = 8;
  config.nand.wordlines_per_block = 4;
  config.nand.page_size_bytes = 512;
  config.nand.tech = CellTech::kPlc;
  config.nand.store_payloads = false;
  FtlPoolConfig pool;
  pool.name = "MAIN";
  pool.mode = CellTech::kPlc;
  pool.ecc = EccScheme::FromPreset(EccPreset::kNone);
  pool.retire_rber = 0.4;
  pool.read_retries = 3;
  config.pools = {pool};
  Ftl ftl(config, &clock);
  ASSERT_TRUE(ftl.Write(1, {}, 0).ok());
  clock.Advance(YearsToUs(5.0));
  uint64_t degraded = 0;
  for (int i = 0; i < 20; ++i) {
    auto read = ftl.Read(1);
    ASSERT_TRUE(read.ok());
    if (read.value().degraded) {
      ++degraded;
    }
  }
  // Accounting closes: every first-sense ECC failure ends as either a retry
  // recovery or a degraded read (no parity on this pool).
  EXPECT_EQ(ftl.stats().ecc_failures(), ftl.stats().retry_recoveries() + degraded);
  // At 5 years the first sense almost always carries errors, and the
  // drift-tracked retries recover nearly all of them.
  EXPECT_GT(ftl.stats().retry_recoveries(), 10u);
  EXPECT_TRUE(ftl.CheckInvariants().ok());
}

TEST(EdgeCaseTest, PackageSingleDieMatchesSerialModel) {
  // A 1-die package with queue depth 1 must reproduce the serial device's
  // timing exactly.
  SimClock pkg_clock;
  NandPackageConfig config;
  config.die.num_blocks = 4;
  config.die.wordlines_per_block = 4;
  config.die.page_size_bytes = 512;
  config.die.tech = CellTech::kTlc;
  config.num_dies = 1;
  NandPackage package(config, &pkg_clock);
  const std::vector<uint8_t> page(512, 1);
  ASSERT_TRUE(package.QueueProgram({0, 0}, page).ok());
  ASSERT_TRUE(package.QueueProgram({0, 1}, page).ok());
  IgnoreResult(package.QueueRead({0, 0}));
  const SimTimeUs makespan = package.Drain();
  const CellTechInfo& info = GetCellTechInfo(CellTech::kTlc);
  EXPECT_EQ(makespan, 2 * info.program_latency_us + info.read_latency_us);
}

TEST(EdgeCaseTest, UfsViewWithStagingStillTwoLuns) {
  SimClock clock;
  SosDeviceConfig config;
  config.nand.num_blocks = 64;
  config.nand.wordlines_per_block = 8;
  config.nand.page_size_bytes = 512;
  config.enable_slc_staging = true;
  config.stage_share = 0.1;
  SosDevice device(config, &clock);
  const auto luns = UfsView(&device).Describe();
  // The stage is an internal buffer, not a host-visible unit.
  ASSERT_EQ(luns.size(), 2u);
  EXPECT_TRUE(luns[0].high_reliability);
}

TEST(EdgeCaseTest, HealthIncludesStagePool) {
  SimClock clock;
  SosDeviceConfig config;
  config.nand.num_blocks = 64;
  config.nand.wordlines_per_block = 8;
  config.nand.page_size_bytes = 512;
  config.enable_slc_staging = true;
  config.stage_share = 0.1;
  SosDevice device(config, &clock);
  const DeviceHealthReport report = CollectHealth(device, 0.1, 0);
  ASSERT_EQ(report.pools.size(), 4u);
  EXPECT_EQ(report.pools.front().name, "STAGE");
  EXPECT_EQ(report.pools.front().mode, CellTech::kSlc);
}

// --- Stats-surface redesign (FtlStats accessors / Snapshot / ToMetrics) --------

TEST(StatsSurfaceTest, AggregateStatsAreSumOfPoolStats) {
  SimClock clock;
  SosDeviceConfig config;
  config.nand.num_blocks = 32;
  config.nand.wordlines_per_block = 4;
  config.nand.page_size_bytes = 512;
  SosDevice device(config, &clock);
  ExtentFileSystem fs(&device, &clock);
  PlacementDirectory placements(&device);
  const PlacementHandle critical = placements.For({Durability::kCritical}).value();
  const PlacementHandle degradable = placements.For({Durability::kDegradable}).value();
  FileMeta meta;
  meta.type = FileType::kPhoto;
  meta.size_bytes = 4096;
  for (int i = 0; i < 20; ++i) {
    IgnoreResult(fs.CreateFile(meta, {}, i % 2 == 0 ? critical : degradable));
  }

  const Ftl& ftl = device.ftl();
  const FtlStats total = ftl.stats();
  uint64_t pool_host_writes = 0;
  uint64_t pool_nand_writes = 0;
  for (uint32_t p = 0; p < ftl.num_pools(); ++p) {
    pool_host_writes += ftl.pool_stats(p).host_writes();
    pool_nand_writes += ftl.pool_stats(p).nand_writes();
  }
  EXPECT_GT(total.host_writes(), 0u);
  EXPECT_EQ(total.host_writes(), pool_host_writes);
  EXPECT_EQ(total.nand_writes(), pool_nand_writes);

  // Snapshot() is a detached value: mutating the device afterwards must not
  // change an already-taken snapshot.
  const FtlStats before = ftl.stats().Snapshot();
  IgnoreResult(fs.CreateFile(meta, {}, critical));
  EXPECT_GT(ftl.stats().host_writes(), before.host_writes());
  EXPECT_TRUE(before == before.Snapshot());
}

TEST(StatsSurfaceTest, FtlToMetricsExportsPoolsAndLatencies) {
  SimClock clock;
  SosDeviceConfig config;
  config.nand.num_blocks = 32;
  config.nand.wordlines_per_block = 4;
  config.nand.page_size_bytes = 512;
  SosDevice device(config, &clock);
  ExtentFileSystem fs(&device, &clock);
  PlacementDirectory placements(&device);
  FileMeta meta;
  meta.type = FileType::kPhoto;
  meta.size_bytes = 4096;
  auto id = fs.CreateFile(meta, {}, placements.For({Durability::kCritical}).value());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs.ReadFile(id.value()).ok());

  obs::MetricRegistry registry;
  device.ftl().ToMetrics(registry, "ftl.");
  device.ftl().nand().ToMetrics(registry, "flash.die.");
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"ftl.host_writes\""), std::string::npos);
  EXPECT_NE(json.find("\"ftl.pool.SYS.host_writes\""), std::string::npos);
  EXPECT_NE(json.find("\"ftl.pool.SPARE.host_writes\""), std::string::npos);
  EXPECT_NE(json.find("\"ftl.write_amplification\""), std::string::npos);
  EXPECT_NE(json.find("\"ftl.write.latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"flash.die.read.rber\""), std::string::npos);

  // Two exports of the same device state are byte-identical.
  obs::MetricRegistry again;
  device.ftl().ToMetrics(again, "ftl.");
  device.ftl().nand().ToMetrics(again, "flash.die.");
  EXPECT_EQ(json, again.ToJson());
}

TEST(StatsSurfaceTest, LifetimeResultToMetricsCarriesDeviceRows) {
  LifetimeSimConfig config;
  config.days = 10;
  config.nand.num_blocks = 64;
  config.training_files = 500;
  config.sample_period_days = 5;
  LifetimeSim sim(config);
  const LifetimeResult result = sim.Run();

  obs::MetricRegistry registry;
  result.ToMetrics(registry, "dev.");
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"dev.sim.host_bytes_written\""), std::string::npos);
  EXPECT_NE(json.find("\"dev.sos.daemon.activations\""), std::string::npos);
  EXPECT_NE(json.find("\"dev.ftl.pool."), std::string::npos);
  EXPECT_NE(json.find("\"dev.flash.die.read.rber\""), std::string::npos);
  EXPECT_NE(json.find("\"dev.obs.trace.events\""), std::string::npos);
  // 10 days x 3 daemons (migration + monitor + autodelete run checks daily).
  EXPECT_GT(result.daemon_activations(), 0u);
}

}  // namespace
}  // namespace sos
