# Copyright (c) 2026 The SOS Authors. MIT License.
#
# Fleet shard-merge determinism check (ctest: fleet_shard_merge).
#
# The fleet contract (DESIGN.md §13): the aggregate a fleet run reports is a
# pure function of (seed, devices, mix) -- never of --jobs or of how the
# population was split across shard processes. This script runs the same
# small fleet four ways and requires the metrics JSON and stdout report to
# be byte-identical across all of them:
#   1. one process, --jobs=1          (reference)
#   2. one process, --jobs=4          (thread fan-out)
#   3. two shards -> bench_fleet --merge   (process fan-out, bench merge)
#   4. two shards -> fleetmerge            (standalone merge tool)
#
# Expects -DBENCH=<bench_fleet>, -DMERGE_TOOL=<fleetmerge>,
# -DWORK_DIR=<scratch dir>.

if(NOT DEFINED BENCH OR NOT DEFINED MERGE_TOOL OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
      "pass -DBENCH=<bench_fleet>, -DMERGE_TOOL=<fleetmerge> and -DWORK_DIR=<scratch dir>")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(devices 48)
set(seed 5)

function(run_or_die label)
  execute_process(
    COMMAND ${ARGN}
    OUTPUT_FILE "${WORK_DIR}/stdout_${label}.txt"
    ERROR_VARIABLE run_stderr
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "${label} failed (rc=${run_rc}): ${run_stderr}")
  endif()
endfunction()

# Arms 1 and 2: unsharded, serial vs threaded.
run_or_die(serial "${BENCH}" --devices=${devices} --seed=${seed} --jobs=1
    --metrics-out=${WORK_DIR}/metrics_serial.json)
run_or_die(parallel "${BENCH}" --devices=${devices} --seed=${seed} --jobs=4
    --metrics-out=${WORK_DIR}/metrics_parallel.json)

# Arms 3 and 4: two shard processes, merged by the bench and by fleetmerge.
# Shard 1 runs threaded to also cross jobs with sharding.
run_or_die(shard0 "${BENCH}" --devices=${devices} --seed=${seed} --jobs=1
    --shard=0/2 --partial-out=${WORK_DIR}/p0.json)
run_or_die(shard1 "${BENCH}" --devices=${devices} --seed=${seed} --jobs=4
    --shard=1/2 --partial-out=${WORK_DIR}/p1.json)
# Merge in reversed order: the merge must canonicalize, not rely on input order.
run_or_die(merged "${BENCH}" --merge=${WORK_DIR}/p1.json --merge=${WORK_DIR}/p0.json
    --metrics-out=${WORK_DIR}/metrics_merged.json)
run_or_die(fleetmerge "${MERGE_TOOL}" --metrics-out=${WORK_DIR}/metrics_fleetmerge.json
    --report=1 ${WORK_DIR}/p1.json ${WORK_DIR}/p0.json)

foreach(arm IN ITEMS parallel merged)
  foreach(kind IN ITEMS metrics stdout)
    if(kind STREQUAL "metrics")
      set(a "${WORK_DIR}/metrics_serial.json")
      set(b "${WORK_DIR}/metrics_${arm}.json")
    else()
      set(a "${WORK_DIR}/stdout_serial.txt")
      set(b "${WORK_DIR}/stdout_${arm}.txt")
    endif()
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
      RESULT_VARIABLE diff_rc)
    if(NOT diff_rc EQUAL 0)
      message(FATAL_ERROR
          "${a} and ${b} differ: the fleet aggregate depends on --jobs or the "
          "shard split (determinism contract of DESIGN.md §13 broken)")
    endif()
  endforeach()
endforeach()

# fleetmerge prints the report without the bench banner, so only its metrics
# artifact is compared.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
      "${WORK_DIR}/metrics_serial.json" "${WORK_DIR}/metrics_fleetmerge.json"
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
      "fleetmerge metrics differ from the unsharded run: the standalone merge "
      "tool does not reconstruct the exact ledger")
endif()

message(STATUS
    "fleet aggregate byte-identical for jobs=1, jobs=4, 2-shard bench merge and fleetmerge")
