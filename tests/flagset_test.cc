// Copyright (c) 2026 The SOS Authors. MIT License.
//
// FlagSet parsing tests, focused on the enum-valued flags benches use for
// mode selection (--placement=legacy|static|lifetime). The contract is
// strict: a value outside the declared choice set is a hard parse error that
// names the accepted spellings -- never a silent fallback to the default.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"

namespace sos {
namespace {

// Parse() wants char** argv; build one from string literals (argv[0] is the
// program name and ignored).
Status ParseArgs(FlagSet& flags, std::vector<std::string> args) {
  args.insert(args.begin(), "test_prog");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) {
    argv.push_back(arg.data());
  }
  return flags.Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagSetEnumTest, DefaultsWhenAbsent) {
  FlagSet flags("t", "");
  std::string* placement =
      flags.Enum("placement", "lifetime", {"legacy", "static", "lifetime"}, "arm");
  EXPECT_TRUE(ParseArgs(flags, {}).ok());
  EXPECT_EQ(*placement, "lifetime");
}

TEST(FlagSetEnumTest, AcceptsDeclaredChoicesBothSyntaxes) {
  FlagSet flags("t", "");
  std::string* placement =
      flags.Enum("placement", "lifetime", {"legacy", "static", "lifetime"}, "arm");
  EXPECT_TRUE(ParseArgs(flags, {"--placement=static"}).ok());
  EXPECT_EQ(*placement, "static");
  EXPECT_TRUE(ParseArgs(flags, {"--placement", "legacy"}).ok());
  EXPECT_EQ(*placement, "legacy");
}

TEST(FlagSetEnumTest, RejectsValuesOutsideChoiceSet) {
  FlagSet flags("t", "");
  std::string* placement =
      flags.Enum("placement", "lifetime", {"legacy", "static", "lifetime"}, "arm");
  (void)placement;
  const Status s = ParseArgs(flags, {"--placement=adaptive"});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The error names the flag, the bad value, and every accepted spelling.
  EXPECT_NE(s.message().find("--placement"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("adaptive"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("legacy"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("static"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("lifetime"), std::string::npos) << s.ToString();
}

TEST(FlagSetEnumTest, RejectsCaseVariantsAndPrefixes) {
  FlagSet flags("t", "");
  (void)flags.Enum("placement", "legacy", {"legacy", "static", "lifetime"}, "arm");
  // Exact spellings only: no case folding, no abbreviation.
  EXPECT_EQ(ParseArgs(flags, {"--placement=Legacy"}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseArgs(flags, {"--placement=life"}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseArgs(flags, {"--placement="}).code(), StatusCode::kInvalidArgument);
}

TEST(FlagSetEnumTest, MissingValueIsAnError) {
  FlagSet flags("t", "");
  (void)flags.Enum("placement", "legacy", {"legacy", "static"}, "arm");
  EXPECT_EQ(ParseArgs(flags, {"--placement"}).code(), StatusCode::kInvalidArgument);
}

TEST(FlagSetEnumTest, UsageListsChoices) {
  FlagSet flags("t", "");
  (void)flags.Enum("placement", "legacy", {"legacy", "static", "lifetime"}, "arm");
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--placement=<legacy|static|lifetime>"), std::string::npos) << usage;
  EXPECT_NE(usage.find("default: legacy"), std::string::npos) << usage;
}

TEST(FlagSetEnumTest, ComposesWithOtherFlagKinds) {
  FlagSet flags("t", "");
  size_t* jobs = flags.Size("jobs", 1, "workers");
  std::string* placement = flags.Enum("placement", "legacy", {"legacy", "lifetime"}, "arm");
  EXPECT_TRUE(ParseArgs(flags, {"--jobs=4", "--placement=lifetime"}).ok());
  EXPECT_EQ(*jobs, 4u);
  EXPECT_EQ(*placement, "lifetime");
  // An enum error surfaces even when other flags parsed fine.
  EXPECT_EQ(ParseArgs(flags, {"--jobs=2", "--placement=bogus"}).code(),
            StatusCode::kInvalidArgument);
}

// --- Declaration-time misuse (bench bugs, not user errors) ------------------
//
// FlagSet's contract is that a malformed *declaration* aborts the process at
// startup: a bench that registers the same flag twice, or an enum whose
// default cannot be a member of its choice set, should never get as far as
// parsing user input. These are death tests so the abort path itself stays
// covered.

using FlagSetDeathTest = ::testing::Test;

TEST(FlagSetDeathTest, DuplicateDeclarationAborts) {
  EXPECT_DEATH(
      {
        FlagSet flags("t", "");
        (void)flags.Size("jobs", 1, "workers");
        (void)flags.U64("jobs", 2, "same name, different kind");
      },
      "duplicate flag --jobs");
}

TEST(FlagSetDeathTest, EnumWithEmptyChoiceSetAborts) {
  // An empty choice set can never contain the default, so the declaration is
  // unsatisfiable -- caught before any argv is looked at.
  EXPECT_DEATH(
      {
        FlagSet flags("t", "");
        (void)flags.Enum("placement", "legacy", {}, "arm");
      },
      "default 'legacy' for --placement is not one of its choices");
}

TEST(FlagSetDeathTest, EnumDefaultOutsideChoicesAborts) {
  EXPECT_DEATH(
      {
        FlagSet flags("t", "");
        (void)flags.Enum("placement", "adaptive", {"legacy", "static"}, "arm");
      },
      "default 'adaptive' for --placement is not one of its choices");
}

// --- StringList negative paths ----------------------------------------------

TEST(FlagSetListTest, EmptyElementsAreRejectedInBothSyntaxes) {
  FlagSet flags("t", "");
  std::vector<std::string>* faults = flags.StringList("fault", "fault spec");
  EXPECT_EQ(ParseArgs(flags, {"--fault="}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseArgs(flags, {"--fault", ""}).code(), StatusCode::kInvalidArgument);
  // A good element before the bad one does not make the parse succeed, and
  // the error names the flag.
  const Status s = ParseArgs(flags, {"--fault=power_cut@100", "--fault="});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("--fault"), std::string::npos) << s.ToString();
  (void)faults;
}

TEST(FlagSetListTest, RepeatedOccurrencesAppendInOrder) {
  FlagSet flags("t", "");
  std::vector<std::string>* faults = flags.StringList("fault", "fault spec");
  ASSERT_TRUE(ParseArgs(flags, {"--fault=power_cut@100", "--fault", "die_fail@2,d3"}).ok());
  ASSERT_EQ(faults->size(), 2u);
  EXPECT_EQ((*faults)[0], "power_cut@100");
  EXPECT_EQ((*faults)[1], "die_fail@2,d3");
}

}  // namespace
}  // namespace sos
