// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Placement-directive API tests: handle lifecycle (open/describe/close,
// slot recycling, exhaustion), the host-side PlacementDirectory memoization,
// and the Reclassify edge-case contract (unmapped/trimmed LBAs, same-class
// no-op) on both SosDevice and BaselineDevice.

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/sos/sos_device.h"

namespace sos {
namespace {

SosDeviceConfig SmallSos() {
  SosDeviceConfig config;
  config.nand.num_blocks = 32;
  config.nand.wordlines_per_block = 4;
  config.nand.page_size_bytes = 512;
  config.nand.tech = CellTech::kPlc;
  config.nand.seed = 21;
  return config;
}

std::vector<uint8_t> Block(uint8_t fill) { return std::vector<uint8_t>(512, fill); }

PlacementSpec Spec(Durability durability, LifetimeHint lifetime = LifetimeHint::kUnknown) {
  PlacementSpec spec;
  spec.durability = durability;
  spec.lifetime = lifetime;
  return spec;
}

// --- Handle table lifecycle --------------------------------------------------

TEST(PlacementHandleTest, OpenDescribeClose) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);

  auto opened = device.OpenPlacement(Spec(Durability::kDegradable, LifetimeHint::kShort));
  ASSERT_TRUE(opened.ok());
  const PlacementHandle handle = opened.value();
  EXPECT_TRUE(handle.valid());
  EXPECT_EQ(handle.id(), 0u);  // lowest free slot first

  auto described = device.DescribePlacement(handle);
  ASSERT_TRUE(described.ok());
  EXPECT_EQ(described.value().durability, Durability::kDegradable);
  EXPECT_EQ(described.value().lifetime, LifetimeHint::kShort);

  EXPECT_TRUE(device.ClosePlacement(handle).ok());
  // Closed slot: describe and writes now fail the lifecycle check.
  EXPECT_EQ(device.DescribePlacement(handle).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(device.Write(1, Block(1), handle).code(), StatusCode::kFailedPrecondition);
}

TEST(PlacementHandleTest, DoubleCloseFailsPrecondition) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  auto opened = device.OpenPlacement(Spec(Durability::kCritical));
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(device.ClosePlacement(opened.value()).ok());
  EXPECT_EQ(device.ClosePlacement(opened.value()).code(), StatusCode::kFailedPrecondition);
}

TEST(PlacementHandleTest, MalformedHandlesAreInvalidArgument) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  // Default-constructed (invalid sentinel) and beyond-the-table ids are
  // malformed, not merely unopened.
  EXPECT_EQ(device.Write(1, Block(1), PlacementHandle()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(device.ClosePlacement(PlacementHandle(kMaxPlacementHandles)).code(),
            StatusCode::kInvalidArgument);
  // A well-formed id that was simply never opened is a precondition failure.
  EXPECT_EQ(device.ClosePlacement(PlacementHandle(3)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PlacementHandleTest, ExhaustionAndSlotRecycling) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  std::vector<PlacementHandle> handles;
  for (uint32_t i = 0; i < kMaxPlacementHandles; ++i) {
    auto opened = device.OpenPlacement(Spec(Durability::kCritical));
    ASSERT_TRUE(opened.ok()) << "open " << i;
    EXPECT_EQ(opened.value().id(), i);
    handles.push_back(opened.value());
  }
  // Table full: the 17th open is resource exhaustion, not a crash or alias.
  EXPECT_EQ(device.OpenPlacement(Spec(Durability::kCritical)).status().code(),
            StatusCode::kResourceExhausted);

  // Closing any slot makes exactly that id available again (lowest-free-slot
  // allocation recycles ids -- the documented FDP aliasing caveat).
  ASSERT_TRUE(device.ClosePlacement(handles[5]).ok());
  auto reopened = device.OpenPlacement(Spec(Durability::kDegradable));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().id(), 5u);
}

TEST(PlacementHandleTest, LabelIsDeterministic) {
  PlacementSpec spec = Spec(Durability::kDegradable, LifetimeHint::kShort);
  EXPECT_EQ(PlacementLabel(PlacementHandle(1), spec), "h1_degradable_short");
  spec.label = "cache_objects";
  EXPECT_EQ(PlacementLabel(PlacementHandle(1), spec), "cache_objects");
}

// --- PlacementDirectory ------------------------------------------------------

TEST(PlacementDirectoryTest, MemoizesOneHandlePerSpec) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  PlacementDirectory placements(&device);

  auto a = placements.For(Spec(Durability::kDegradable, LifetimeHint::kShort));
  auto b = placements.For(Spec(Durability::kDegradable, LifetimeHint::kShort));
  auto c = placements.For(Spec(Durability::kCritical, LifetimeHint::kLong));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a.value(), b.value());  // same attributes -> same slot
  EXPECT_NE(a.value(), c.value());

  // Labels are not part of the memoization key: first label wins.
  PlacementSpec labeled = Spec(Durability::kDegradable, LifetimeHint::kShort);
  labeled.label = "other";
  auto d = placements.For(labeled);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), a.value());

  placements.CloseAll();
  EXPECT_EQ(device.DescribePlacement(a.value()).status().code(),
            StatusCode::kFailedPrecondition);
}

// --- Reclassify edge cases ---------------------------------------------------

TEST(ReclassifyTest, UnmappedLbaIsNotFound) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  const PlacementHandle critical =
      device.OpenPlacement(Spec(Durability::kCritical)).value();
  EXPECT_EQ(device.Reclassify(7, critical).code(), StatusCode::kNotFound);
}

TEST(ReclassifyTest, TrimmedLbaIsNotFound) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  const PlacementHandle critical =
      device.OpenPlacement(Spec(Durability::kCritical)).value();
  ASSERT_TRUE(device.Write(7, Block(9), critical).ok());
  ASSERT_TRUE(device.Trim(7).ok());
  EXPECT_EQ(device.Reclassify(7, critical).code(), StatusCode::kNotFound);
}

TEST(ReclassifyTest, SameClassIsNoOpWithoutFlashOps) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  const PlacementHandle critical =
      device.OpenPlacement(Spec(Durability::kCritical)).value();
  ASSERT_TRUE(device.Write(7, Block(9), critical).ok());
  ASSERT_EQ(device.ftl().PoolOf(7), device.sys_pool());

  const uint64_t nand_writes_before = device.ftl().stats().nand_writes();
  const uint64_t migrations_before = device.ftl().stats().migrations();
  ASSERT_TRUE(device.Reclassify(7, critical).ok());  // already resident in SYS
  EXPECT_EQ(device.ftl().stats().nand_writes(), nand_writes_before);
  EXPECT_EQ(device.ftl().stats().migrations(), migrations_before);
  EXPECT_EQ(device.ftl().PoolOf(7), device.sys_pool());
}

TEST(ReclassifyTest, LifecycleErrorsMatchWritePath) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  const PlacementHandle critical =
      device.OpenPlacement(Spec(Durability::kCritical)).value();
  ASSERT_TRUE(device.Write(7, Block(9), critical).ok());
  EXPECT_EQ(device.Reclassify(7, PlacementHandle()).code(), StatusCode::kInvalidArgument);
  const PlacementHandle degradable =
      device.OpenPlacement(Spec(Durability::kDegradable)).value();
  ASSERT_TRUE(device.ClosePlacement(degradable).ok());
  EXPECT_EQ(device.Reclassify(7, degradable).code(), StatusCode::kFailedPrecondition);
}

TEST(ReclassifyTest, BaselineDeviceHonorsSameContract) {
  SimClock clock;
  NandConfig nand = SmallSos().nand;
  nand.tech = CellTech::kTlc;
  BaselineDevice device(nand, &clock, EccPreset::kBch, GcPolicy::kGreedy);
  const PlacementHandle handle =
      device.OpenPlacement(Spec(Durability::kCritical)).value();
  // Unmapped and trimmed LBAs are kNotFound even though the baseline has a
  // single reliability domain and nothing would move.
  EXPECT_EQ(device.Reclassify(3, handle).code(), StatusCode::kNotFound);
  ASSERT_TRUE(device.Write(3, Block(1), handle).ok());
  EXPECT_TRUE(device.Reclassify(3, handle).ok());
  ASSERT_TRUE(device.Trim(3).ok());
  EXPECT_EQ(device.Reclassify(3, handle).code(), StatusCode::kNotFound);
  // Lifecycle errors still apply.
  EXPECT_EQ(device.Reclassify(3, PlacementHandle()).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sos
