// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Property-based equivalence suite for the flat L2P refactor (src/ftl/l2p.h).
//
// Two layers:
//   1. Container level: randomized op sequences through L2pTable and the
//      map-based ReferenceL2pMap must produce identical results at every
//      step -- lookups, erase returns, mapped counts and full ascending
//      iteration order.
//   2. FTL level: randomized host op sequences (write / trim / read /
//      migrate / refresh / background GC) against a payload-storing Ftl,
//      shadowed by an ordered-map model of the expected mapping state.
//      Mapping membership, owning pool, Status codes, payload bytes and
//      stats stay in lockstep across seeds and geometries, and a power cut +
//      RecoverFromFlash at the end must rebuild exactly the acked state
//      (modulo the documented trim-resurrection semantics, DESIGN.md §10).

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/common/status.h"
#include "src/ftl/ftl.h"
#include "src/ftl/l2p.h"

namespace sos {
namespace {

// --- Container level ---------------------------------------------------------

PhysLoc RandomLoc(Rng& rng) {
  PhysLoc loc;
  loc.pool = static_cast<uint32_t>(rng.NextBounded(1u << 10));
  loc.block = static_cast<uint32_t>(rng.NextBounded(1u << 20));
  loc.page = static_cast<uint32_t>(rng.NextBounded(1u << 20));
  loc.tainted = rng.NextBounded(8) == 0;
  return loc;
}

TEST(L2pEquivalenceTest, FlatTableMatchesReferenceMapOnRandomOpSequences) {
  for (uint64_t seed : {1u, 7u, 99u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(DeriveSeed({seed, 0x4c3250ull}));
    L2pTable flat;
    ReferenceL2pMap ref;
    // soslint:allow(R10) L2P slot counts, not byte sizes
    flat.Reserve(1024);
    ref.Reserve(1024);  // soslint:allow(R10) same slot count as above
    for (uint64_t i = 0; i < 30000; ++i) {
      // Mostly-dense LBAs (the host allocator is a bump allocator) plus an
      // occasional sparse outlier to exercise flat-table growth.
      const uint64_t lba = rng.NextBounded(16) == 0 ? 100000 + rng.NextBounded(4096)
                                                    : rng.NextBounded(8192);
      switch (rng.NextBounded(6)) {
        case 0:
        case 1: {
          const PhysLoc loc = RandomLoc(rng);
          flat.Set(lba, loc);
          ref.Set(lba, loc);
          break;
        }
        case 2:
          ASSERT_EQ(flat.Erase(lba), ref.Erase(lba)) << "op " << i << " lba " << lba;
          break;
        default: {
          const std::optional<PhysLoc> a = flat.Find(lba);
          const std::optional<PhysLoc> b = ref.Find(lba);
          ASSERT_EQ(a.has_value(), b.has_value()) << "op " << i << " lba " << lba;
          if (a.has_value()) {
            ASSERT_EQ(*a, *b) << "op " << i << " lba " << lba;
          }
          ASSERT_EQ(flat.Contains(lba), ref.Contains(lba));
          break;
        }
      }
      ASSERT_EQ(flat.mapped(), ref.mapped()) << "op " << i;
    }
    // Full iteration must agree in order and content (both ascending).
    std::vector<std::pair<uint64_t, PhysLoc>> a;
    std::vector<std::pair<uint64_t, PhysLoc>> b;
    flat.ForEachMapped([&a](uint64_t l, const PhysLoc& loc) { a.emplace_back(l, loc); });
    ref.ForEachMapped([&b](uint64_t l, const PhysLoc& loc) { b.emplace_back(l, loc); });
    ASSERT_EQ(a, b);
    flat.Clear();
    ref.Clear();
    EXPECT_EQ(flat.mapped(), 0u);
    EXPECT_EQ(ref.mapped(), 0u);
    EXPECT_FALSE(flat.Contains(5));
  }
}

// --- FTL level ---------------------------------------------------------------

struct ShadowEntry {
  uint32_t pool = 0;
  std::vector<uint8_t> payload;  // full page, what an intact read must return
};

std::vector<uint8_t> PagePayload(uint64_t lba, uint64_t version, uint32_t page_size) {
  std::vector<uint8_t> data(page_size);
  for (uint32_t i = 0; i < page_size; ++i) {
    data[i] = static_cast<uint8_t>((lba * 131 + version * 17 + i * 31) & 0xFF);
  }
  return data;
}

FtlConfig ShadowConfig(uint64_t seed, int geometry) {
  FtlConfig config;
  config.nand.store_payloads = true;
  config.nand.seed = seed;
  FtlPoolConfig a;
  a.name = "A";
  a.ecc = EccScheme::FromPreset(EccPreset::kBch);
  a.share = 0.5;
  a.read_retries = 1;
  FtlPoolConfig b;
  b.name = "B";
  b.ecc = EccScheme::FromPreset(EccPreset::kBch);
  b.share = 0.5;
  b.wear_leveling = false;
  if (geometry == 0) {
    config.nand.num_blocks = 24;
    config.nand.wordlines_per_block = 8;
    config.nand.page_size_bytes = 256;
    config.nand.tech = CellTech::kQlc;
    a.mode = CellTech::kTlc;
    a.parity_stripe = 4;
    b.mode = CellTech::kQlc;
  } else {
    config.nand.num_blocks = 20;
    config.nand.wordlines_per_block = 4;
    config.nand.page_size_bytes = 512;
    config.nand.tech = CellTech::kPlc;
    a.mode = CellTech::kQlc;
    a.hot_cold_separation = false;
    b.mode = CellTech::kPlc;
  }
  config.pools = {a, b};
  return config;
}

void RunShadowProperty(uint64_t seed, int geometry) {
  SimClock clock;
  const FtlConfig config = ShadowConfig(seed, geometry);
  Ftl ftl(config, &clock);
  const uint32_t page = config.nand.page_size_bytes;
  const uint64_t kLbas = ftl.ExportedPages() / 3;
  ASSERT_GT(kLbas, 8u);

  std::map<uint64_t, ShadowEntry> shadow;
  std::set<uint64_t> ever_trimmed;  // trim keeps no journal: resurrection ok
  uint64_t ok_writes = 0;
  Rng rng(DeriveSeed({seed, 0x73686164ull, static_cast<uint64_t>(geometry)}));

  for (uint64_t op = 0; op < 1500; ++op) {
    SCOPED_TRACE("op " + std::to_string(op));
    const uint64_t lba = rng.NextBounded(kLbas);
    const uint64_t action = rng.NextBounded(10);
    if (action < 5) {  // write / overwrite
      const uint32_t pool = static_cast<uint32_t>(rng.NextBounded(2));
      std::vector<uint8_t> payload = PagePayload(lba, op, page);
      const Status s = ftl.Write(lba, payload, pool);
      ASSERT_TRUE(s.ok() || s.code() == StatusCode::kOutOfSpace) << s.ToString();
      if (s.ok()) {
        shadow[lba] = ShadowEntry{pool, std::move(payload)};
        ever_trimmed.erase(lba);
        ++ok_writes;
      }
    } else if (action < 7) {  // read
      const Result<FtlReadResult> read = ftl.Read(lba);
      const auto it = shadow.find(lba);
      if (it == shadow.end()) {
        ASSERT_FALSE(read.ok());
        EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
      } else {
        ASSERT_TRUE(read.ok()) << read.status().ToString();
        EXPECT_EQ(read.value().pool_id, it->second.pool);
        if (!read.value().degraded && !read.value().tainted &&
            read.value().residual_bit_errors == 0) {
          EXPECT_EQ(read.value().data, it->second.payload);
        }
      }
    } else if (action == 7) {  // trim
      const Status s = ftl.Trim(lba);
      if (shadow.erase(lba) > 0) {
        EXPECT_TRUE(s.ok()) << s.ToString();
        ever_trimmed.insert(lba);
      } else {
        EXPECT_EQ(s.code(), StatusCode::kNotFound);
      }
    } else if (action == 8) {  // migrate
      const uint32_t target = static_cast<uint32_t>(rng.NextBounded(2));
      const Status s = ftl.Migrate(lba, target);
      const auto it = shadow.find(lba);
      if (it == shadow.end()) {
        EXPECT_EQ(s.code(), StatusCode::kNotFound);
      } else {
        ASSERT_TRUE(s.ok() || s.code() == StatusCode::kOutOfSpace) << s.ToString();
        if (s.ok()) {
          it->second.pool = target;
        }
      }
    } else {  // refresh (mapping and bytes unchanged)
      const Status s = ftl.Refresh(lba);
      if (shadow.count(lba) == 0) {
        EXPECT_EQ(s.code(), StatusCode::kNotFound);
      } else {
        ASSERT_TRUE(s.ok() || s.code() == StatusCode::kOutOfSpace) << s.ToString();
      }
    }
    if (op % 97 == 0) {
      ftl.BackgroundCollect();
    }
    if (op % 250 == 249) {
      ASSERT_TRUE(ftl.CheckInvariants().ok());
      for (uint64_t l = 0; l < kLbas; ++l) {
        ASSERT_EQ(ftl.IsMapped(l), shadow.count(l) > 0) << "lba " << l;
        if (shadow.count(l) > 0) {
          ASSERT_EQ(ftl.PoolOf(l), shadow.at(l).pool) << "lba " << l;
        }
      }
    }
  }
  EXPECT_EQ(ftl.stats().host_writes(), ok_writes);

  // Power cut + mount: the rebuilt L2P must contain exactly the acked state;
  // only previously trimmed LBAs may resurrect (no trim journal).
  ftl.nand().PowerCut();
  ASSERT_TRUE(ftl.RecoverFromFlash().ok());
  ASSERT_TRUE(ftl.CheckInvariants().ok());
  for (const auto& [lba, entry] : shadow) {
    SCOPED_TRACE("recovered lba " + std::to_string(lba));
    ASSERT_TRUE(ftl.IsMapped(lba));
    EXPECT_EQ(ftl.PoolOf(lba), entry.pool);
    const Result<FtlReadResult> read = ftl.Read(lba);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    if (!read.value().degraded && !read.value().tainted &&
        read.value().residual_bit_errors == 0) {
      EXPECT_EQ(read.value().data, entry.payload);
    }
  }
  for (uint64_t l = 0; l < kLbas; ++l) {
    if (ftl.IsMapped(l) && shadow.count(l) == 0) {
      EXPECT_TRUE(ever_trimmed.count(l) > 0)
          << "lba " << l << " resurrected without ever being trimmed";
    }
  }
}

TEST(L2pEquivalenceTest, FtlMappingTracksShadowModelGeometry0) {
  for (uint64_t seed : {3u, 11u, 42u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunShadowProperty(seed, 0);
  }
}

TEST(L2pEquivalenceTest, FtlMappingTracksShadowModelGeometry1) {
  for (uint64_t seed : {5u, 23u, 77u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunShadowProperty(seed, 1);
  }
}

}  // namespace
}  // namespace sos
