// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Tests for the classification stack: features, synthetic corpus
// distributions, both learned models vs the rule baseline, the evaluation
// machinery, and the paper's ~79% auto-delete accuracy anchor.

#include <gtest/gtest.h>

#include "src/classify/classifier.h"
#include "src/classify/corpus.h"
#include "src/classify/eval.h"
#include "src/classify/features.h"
#include "src/classify/boosted_stumps.h"
#include "src/classify/logistic.h"
#include "src/classify/naive_bayes.h"
#include "src/common/rng.h"
#include "src/common/units.h"

namespace sos {
namespace {

CorpusConfig TestCorpusConfig() {
  CorpusConfig config;
  config.num_files = 6000;
  config.seed = 77;
  return config;
}

// --- Features --------------------------------------------------------------

TEST(FeaturesTest, DimensionsAndOneHot) {
  FileMeta meta;
  meta.type = FileType::kPhoto;
  meta.path = "dcim/camera/img_1.jpg";
  meta.size_bytes = kKiB;
  const FeatureVector f = ExtractFeatures(meta, kUsPerYear);
  EXPECT_EQ(f.size(), kFeatureDim);
  // Exactly one type slot is hot.
  int hot = 0;
  for (size_t i = kNumericFeatures; i < kNumericFeatures + kNumFileTypes; ++i) {
    hot += f[i] > 0.0 ? 1 : 0;
  }
  EXPECT_EQ(hot, 1);
  EXPECT_GT(f[kNumericFeatures + static_cast<size_t>(FileType::kPhoto)], 0.0);
}

TEST(FeaturesTest, PathTokensHashDeterministically) {
  FileMeta a;
  a.path = "dcim/camera/img.jpg";
  FileMeta b = a;
  const FeatureVector fa = ExtractFeatures(a, 0);
  const FeatureVector fb = ExtractFeatures(b, 0);
  EXPECT_EQ(fa, fb);
}

TEST(FeaturesTest, AgeFeatureGrowsWithTime) {
  FileMeta meta;
  meta.created_us = 0;
  const FeatureVector young = ExtractFeatures(meta, kUsPerDay);
  const FeatureVector old = ExtractFeatures(meta, 100 * kUsPerDay);
  EXPECT_GT(old[1], young[1]);  // log_age is feature index 1
}

TEST(FeaturesTest, NamesAreStable) {
  EXPECT_STREQ(FeatureName(0), "log_size");
  EXPECT_STREQ(FeatureName(6), "personal");
  EXPECT_STREQ(FeatureName(kNumericFeatures), "system");
}

// --- Corpus ----------------------------------------------------------------

TEST(CorpusTest, DeterministicForSeed) {
  const auto a = GenerateCorpus(TestCorpusConfig());
  const auto b = GenerateCorpus(TestCorpusConfig());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 500) {
    EXPECT_EQ(a[i].path, b[i].path);
    EXPECT_EQ(a[i].size_bytes, b[i].size_bytes);
    EXPECT_EQ(a[i].true_priority, b[i].true_priority);
  }
}

TEST(CorpusTest, MediaDominatesBytes) {
  // Paper §4.2 / [66-68]: media files comprise over half of mobile data.
  const auto corpus = GenerateCorpus(TestCorpusConfig());
  const CorpusStats stats = ComputeCorpusStats(corpus);
  EXPECT_GT(static_cast<double>(stats.media_bytes) / static_cast<double>(stats.total_bytes),
            0.5);
}

TEST(CorpusTest, MostBytesAreExpendable) {
  // The premise that makes SOS worthwhile: most capacity can degrade.
  const auto corpus = GenerateCorpus(TestCorpusConfig());
  const CorpusStats stats = ComputeCorpusStats(corpus);
  EXPECT_GT(static_cast<double>(stats.expendable_bytes) /
                static_cast<double>(stats.total_bytes),
            0.5);
}

TEST(CorpusTest, SystemFilesAreCritical) {
  const auto corpus = GenerateCorpus(TestCorpusConfig());
  uint64_t system_total = 0;
  uint64_t system_critical = 0;
  for (const auto& meta : corpus) {
    if (meta.type == FileType::kSystem) {
      ++system_total;
      system_critical += meta.true_priority == Priority::kCritical ? 1 : 0;
    }
  }
  ASSERT_GT(system_total, 0u);
  // Only label noise can make a system file expendable.
  EXPECT_GT(static_cast<double>(system_critical) / static_cast<double>(system_total), 0.85);
}

TEST(CorpusTest, SynthesizeFileHonorsType) {
  Rng rng(3);
  const FileMeta meta = SynthesizeFile(FileType::kVideo, kUsPerDay, 0.0, rng);
  EXPECT_EQ(meta.type, FileType::kVideo);
  EXPECT_EQ(meta.created_us, kUsPerDay);
  EXPECT_GT(meta.size_bytes, 512u);
  EXPECT_NE(meta.path.find(".mp4"), std::string::npos);
}

TEST(CorpusTest, TypeMixRoughlyMatchesProfile) {
  Rng rng(4);
  std::array<int, kNumFileTypes> counts{};
  for (int i = 0; i < 20000; ++i) {
    ++counts[static_cast<size_t>(SampleFileType(rng))];
  }
  // Photos ~32% of file count.
  EXPECT_NEAR(counts[static_cast<size_t>(FileType::kPhoto)] / 20000.0, 0.32, 0.03);
  EXPECT_NEAR(counts[static_cast<size_t>(FileType::kAppData)] / 20000.0, 0.20, 0.03);
}

// --- Metrics ---------------------------------------------------------------

TEST(MetricsTest, ConfusionMath) {
  ConfusionMatrix cm;
  cm.true_positive = 40;
  cm.false_positive = 10;
  cm.true_negative = 45;
  cm.false_negative = 5;
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.85);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.8);
  EXPECT_NEAR(cm.recall(), 40.0 / 45.0, 1e-12);
  EXPECT_DOUBLE_EQ(cm.false_discovery_rate(), 0.2);
  EXPECT_GT(cm.f1(), 0.8);
}

TEST(MetricsTest, EmptyMatrixIsZero) {
  ConfusionMatrix cm;
  EXPECT_EQ(cm.accuracy(), 0.0);
  EXPECT_EQ(cm.precision(), 0.0);
  EXPECT_EQ(cm.recall(), 0.0);
  EXPECT_EQ(cm.f1(), 0.0);
}

TEST(MetricsTest, SplitIsDisjointAndComplete) {
  const auto corpus = GenerateCorpus(TestCorpusConfig());
  const CorpusSplit split = SplitCorpus(corpus, 5);
  EXPECT_EQ(split.train.size() + split.test.size(), corpus.size());
  EXPECT_NEAR(static_cast<double>(split.test.size()) / static_cast<double>(corpus.size()),
              0.2, 0.01);
}

// --- Models ----------------------------------------------------------------

struct TrainedModels {
  std::vector<FileMeta> corpus;
  CorpusSplit split;
  SimTimeUs now;
  NaiveBayesClassifier nb;
  LogisticClassifier logistic;
  RuleBasedClassifier rules;

  static TrainedModels Make() {
    const CorpusConfig config = TestCorpusConfig();
    std::vector<FileMeta> corpus = GenerateCorpus(config);
    CorpusSplit split = SplitCorpus(corpus, 5);
    const SimTimeUs now = config.device_age_us;
    NaiveBayesClassifier nb = NaiveBayesClassifier::Train(split.train, &ExpendableLabel, now);
    LogisticClassifier logistic =
        LogisticClassifier::Train(split.train, &ExpendableLabel, now);
    return TrainedModels{std::move(corpus), std::move(split), now, std::move(nb),
                         std::move(logistic), RuleBasedClassifier{}};
  }
};

TEST(ModelsTest, LearnedModelsBeatChance) {
  const auto m = TrainedModels::Make();
  const double nb_acc =
      EvaluateClassifier(m.nb, m.split.test, &ExpendableLabel, m.now).accuracy();
  const double lr_acc =
      EvaluateClassifier(m.logistic, m.split.test, &ExpendableLabel, m.now).accuracy();
  EXPECT_GT(nb_acc, 0.75);
  EXPECT_GT(lr_acc, 0.75);
}

TEST(ModelsTest, LearnedModelsBeatTypeRules) {
  // Paper §4.2: type-only classification is insufficient; the learned models
  // must beat it because they see the personal-significance signal.
  const auto m = TrainedModels::Make();
  const double rule_acc =
      EvaluateClassifier(m.rules, m.split.test, &ExpendableLabel, m.now).accuracy();
  const double lr_acc =
      EvaluateClassifier(m.logistic, m.split.test, &ExpendableLabel, m.now).accuracy();
  EXPECT_GT(lr_acc, rule_acc);
}

TEST(ModelsTest, ScoresAreProbabilities) {
  const auto m = TrainedModels::Make();
  for (size_t i = 0; i < m.split.test.size(); i += 7) {
    const double nb = m.nb.Score(*m.split.test[i], m.now);
    const double lr = m.logistic.Score(*m.split.test[i], m.now);
    EXPECT_GE(nb, 0.0);
    EXPECT_LE(nb, 1.0);
    EXPECT_GE(lr, 0.0);
    EXPECT_LE(lr, 1.0);
  }
}

TEST(ModelsTest, HigherThresholdIsMoreConservative) {
  // Raising the demotion threshold must not increase the number of files
  // declared expendable (monotone predictions).
  const auto m = TrainedModels::Make();
  uint64_t prev_positives = ~0ull;
  for (const auto& point :
       SweepThreshold(m.logistic, m.split.test, &ExpendableLabel, m.now, 9)) {
    const uint64_t positives = point.matrix.true_positive + point.matrix.false_positive;
    EXPECT_LE(positives, prev_positives);
    prev_positives = positives;
  }
}

TEST(ModelsTest, DeletionPredictorNearPaperAccuracy) {
  // Paper §4.3/[68]: deletion prediction at ~79% accuracy. The synthetic
  // corpus noise level is tuned so a learned model lands in that band
  // rather than at an unrealistic 99%.
  const auto m = TrainedModels::Make();
  const LogisticClassifier deleter =
      LogisticClassifier::Train(m.split.train, &DeletionLabel, m.now);
  const double acc =
      EvaluateClassifier(deleter, m.split.test, &DeletionLabel, m.now).accuracy();
  EXPECT_GT(acc, 0.70);
  EXPECT_LT(acc, 0.97);
}

TEST(ModelsTest, PersonalSignalProtectsPreciousMedia) {
  // Two identical photos, one with a strong personal signal: the model must
  // score the precious one as less expendable.
  const auto m = TrainedModels::Make();
  Rng rng(5);
  FileMeta plain = SynthesizeFile(FileType::kPhoto, kUsPerDay, 0.0, rng);
  FileMeta precious = plain;
  plain.personal_signal = 0.02;
  precious.personal_signal = 0.98;
  EXPECT_LT(m.logistic.Score(precious, m.now), m.logistic.Score(plain, m.now));
}

TEST(ModelsTest, TrainingIsDeterministic) {
  const auto corpus = GenerateCorpus(TestCorpusConfig());
  const auto pointers = AsPointers(corpus);
  const LogisticClassifier a = LogisticClassifier::Train(pointers, &ExpendableLabel, kUsPerYear);
  const LogisticClassifier b = LogisticClassifier::Train(pointers, &ExpendableLabel, kUsPerYear);
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_EQ(a.bias(), b.bias());
}

TEST(ModelsTest, BoostedStumpsCompetitive) {
  const auto m = TrainedModels::Make();
  const BoostedStumpsClassifier stumps =
      BoostedStumpsClassifier::Train(m.split.train, &ExpendableLabel, m.now);
  EXPECT_GT(stumps.num_stumps(), 10u);
  const double acc =
      EvaluateClassifier(stumps, m.split.test, &ExpendableLabel, m.now).accuracy();
  const double lr_acc =
      EvaluateClassifier(m.logistic, m.split.test, &ExpendableLabel, m.now).accuracy();
  // Within two points of the logistic model (usually ahead: it captures
  // threshold structure).
  EXPECT_GT(acc, lr_acc - 0.02);
  EXPECT_GT(acc, 0.75);
}

TEST(ModelsTest, BoostedStumpsScoresAreProbabilities) {
  const auto m = TrainedModels::Make();
  const BoostedStumpsClassifier stumps =
      BoostedStumpsClassifier::Train(m.split.train, &ExpendableLabel, m.now);
  for (size_t i = 0; i < m.split.test.size(); i += 13) {
    const double score = stumps.Score(*m.split.test[i], m.now);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST(ModelsTest, BoostedStumpsDeterministic) {
  const auto m = TrainedModels::Make();
  const BoostedStumpsClassifier a =
      BoostedStumpsClassifier::Train(m.split.train, &ExpendableLabel, m.now);
  const BoostedStumpsClassifier b =
      BoostedStumpsClassifier::Train(m.split.train, &ExpendableLabel, m.now);
  for (size_t i = 0; i < m.split.test.size(); i += 29) {
    EXPECT_DOUBLE_EQ(a.Score(*m.split.test[i], m.now), b.Score(*m.split.test[i], m.now));
  }
}

TEST(ModelsTest, BoostedStumpsEmptyCorpus) {
  const BoostedStumpsClassifier empty = BoostedStumpsClassifier::Train({}, &ExpendableLabel, 0);
  EXPECT_EQ(empty.num_stumps(), 0u);
  FileMeta meta;
  EXPECT_GE(empty.Score(meta, 0), 0.0);
}

TEST(ModelsTest, NaiveBayesFeatureIntrospection) {
  const auto m = TrainedModels::Make();
  Rng rng(6);
  const FileMeta photo = SynthesizeFile(FileType::kPhoto, kUsPerDay, 0.0, rng);
  const auto odds = m.nb.FeatureLogOdds(photo, m.now);
  // The photo one-hot must push toward expendable (positive log-odds).
  EXPECT_GT(odds[kNumericFeatures + static_cast<size_t>(FileType::kPhoto)], 0.0);
}

}  // namespace
}  // namespace sos
