// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Unit and property tests for the flash substrate: technology catalog,
// error model, and the NAND device simulator.

#include <gtest/gtest.h>

#include "src/flash/cell_tech.h"
#include "src/flash/error_model.h"
#include "src/flash/nand_device.h"

namespace sos {
namespace {

constexpr CellTech kAllTechs[] = {CellTech::kSlc, CellTech::kMlc, CellTech::kTlc,
                                  CellTech::kQlc, CellTech::kPlc};

// --- Cell technology catalog -----------------------------------------------

TEST(CellTechTest, BitsAndLevels) {
  EXPECT_EQ(BitsPerCell(CellTech::kSlc), 1);
  EXPECT_EQ(BitsPerCell(CellTech::kTlc), 3);
  EXPECT_EQ(BitsPerCell(CellTech::kPlc), 5);
  EXPECT_EQ(VoltageLevels(CellTech::kSlc), 2);
  EXPECT_EQ(VoltageLevels(CellTech::kPlc), 32);
}

TEST(CellTechTest, EnduranceDecreasesWithDensity) {
  for (size_t i = 1; i < std::size(kAllTechs); ++i) {
    EXPECT_LT(GetCellTechInfo(kAllTechs[i]).rated_endurance_pec,
              GetCellTechInfo(kAllTechs[i - 1]).rated_endurance_pec)
        << CellTechName(kAllTechs[i]);
  }
}

TEST(CellTechTest, RberIncreasesWithDensity) {
  for (size_t i = 1; i < std::size(kAllTechs); ++i) {
    EXPECT_GT(GetCellTechInfo(kAllTechs[i]).base_rber,
              GetCellTechInfo(kAllTechs[i - 1]).base_rber);
  }
}

TEST(CellTechTest, LatencyIncreasesWithDensity) {
  for (size_t i = 1; i < std::size(kAllTechs); ++i) {
    EXPECT_GT(GetCellTechInfo(kAllTechs[i]).read_latency_us,
              GetCellTechInfo(kAllTechs[i - 1]).read_latency_us);
    EXPECT_GT(GetCellTechInfo(kAllTechs[i]).program_latency_us,
              GetCellTechInfo(kAllTechs[i - 1]).program_latency_us);
  }
}

TEST(CellTechTest, PaperEnduranceRatios) {
  // Paper §4.1: PLC endurance ~6-10x below TLC, ~2x below QLC.
  const double tlc = GetCellTechInfo(CellTech::kTlc).rated_endurance_pec;
  const double qlc = GetCellTechInfo(CellTech::kQlc).rated_endurance_pec;
  const double plc = GetCellTechInfo(CellTech::kPlc).rated_endurance_pec;
  EXPECT_GE(tlc / plc, 6.0);
  EXPECT_LE(tlc / plc, 11.0);
  EXPECT_NEAR(qlc / plc, 2.0, 1.5);
}

TEST(CellTechTest, PaperDensityRatios) {
  // Paper §4.1: QLC = +33% over TLC, PLC = +66% over TLC.
  EXPECT_NEAR(RelativeDensity(CellTech::kQlc, CellTech::kTlc), 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(RelativeDensity(CellTech::kPlc, CellTech::kTlc), 5.0 / 3.0, 1e-9);
}

TEST(CellTechTest, PseudoModeBonus) {
  EXPECT_DOUBLE_EQ(PseudoModeEnduranceBonus(CellTech::kPlc, CellTech::kPlc), 1.0);
  EXPECT_GT(PseudoModeEnduranceBonus(CellTech::kPlc, CellTech::kQlc), 1.0);
  EXPECT_GT(PseudoModeEnduranceBonus(CellTech::kPlc, CellTech::kSlc),
            PseudoModeEnduranceBonus(CellTech::kPlc, CellTech::kQlc));
}

TEST(CellTechTest, Names) {
  EXPECT_EQ(CellTechName(CellTech::kSlc), "SLC");
  EXPECT_EQ(CellTechName(CellTech::kPlc), "PLC");
}

// --- Error model -----------------------------------------------------------

class ErrorModelTechTest : public ::testing::TestWithParam<CellTech> {};

TEST_P(ErrorModelTechTest, FreshCellMatchesBaseRber) {
  PageErrorState state;
  state.mode = GetParam();
  state.endurance_pec = GetCellTechInfo(GetParam()).rated_endurance_pec;
  EXPECT_NEAR(ErrorModel::Rber(state), GetCellTechInfo(GetParam()).base_rber,
              GetCellTechInfo(GetParam()).base_rber * 0.01);
}

TEST_P(ErrorModelTechTest, RberMonotonicInWear) {
  PageErrorState state;
  state.mode = GetParam();
  state.endurance_pec = GetCellTechInfo(GetParam()).rated_endurance_pec;
  double prev = 0.0;
  for (uint32_t pec : {0u, 100u, 500u, 1000u, 5000u}) {
    state.pec_at_program = pec;
    const double rber = ErrorModel::Rber(state);
    EXPECT_GE(rber, prev);
    prev = rber;
  }
}

TEST_P(ErrorModelTechTest, RberMonotonicInRetention) {
  PageErrorState state;
  state.mode = GetParam();
  state.endurance_pec = GetCellTechInfo(GetParam()).rated_endurance_pec;
  double prev = 0.0;
  for (double years : {0.0, 0.1, 0.5, 1.0, 3.0, 10.0}) {
    state.retention_years = years;
    const double rber = ErrorModel::Rber(state);
    EXPECT_GE(rber, prev);
    prev = rber;
  }
}

TEST_P(ErrorModelTechTest, RberMonotonicInReads) {
  PageErrorState state;
  state.mode = GetParam();
  state.endurance_pec = GetCellTechInfo(GetParam()).rated_endurance_pec;
  double prev = 0.0;
  for (uint32_t reads : {0u, 1000u, 100000u}) {
    state.reads_since_program = reads;
    const double rber = ErrorModel::Rber(state);
    EXPECT_GE(rber, prev);
    prev = rber;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTechs, ErrorModelTechTest, ::testing::ValuesIn(kAllTechs),
                         [](const auto& param_info) {
                           return std::string(CellTechName(param_info.param));
                         });

TEST(ErrorModelTest, RberClampedToHalf) {
  PageErrorState state;
  state.mode = CellTech::kPlc;
  state.endurance_pec = 1.0;
  state.pec_at_program = 1000000;  // soslint:allow(R10) P/E cycle count, not a unit
  state.retention_years = 100.0;
  state.reads_since_program = 4000000000u;
  EXPECT_LE(ErrorModel::Rber(state), 0.5);
}

TEST(ErrorModelTest, SampleDeterministicPerSeed) {
  PageErrorState state;
  state.mode = CellTech::kPlc;
  state.endurance_pec = 300;
  state.pec_at_program = 250;
  state.retention_years = 1.0;
  const uint64_t bits = 4096 * 8;
  EXPECT_EQ(ErrorModel::SampleErrorCount(state, bits, 99),
            ErrorModel::SampleErrorCount(state, bits, 99));
  // Different seeds should (almost surely) differ for a high-error state.
  uint64_t distinct = 0;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    if (ErrorModel::SampleErrorCount(state, bits, seed) !=
        ErrorModel::SampleErrorCount(state, bits, seed + 100)) {
      ++distinct;
    }
  }
  EXPECT_GT(distinct, 0u);
}

TEST(ErrorModelTest, SampleMeanTracksExpectation) {
  PageErrorState state;
  state.mode = CellTech::kQlc;
  state.endurance_pec = 1000;
  state.pec_at_program = 800;
  state.retention_years = 0.5;
  const uint64_t bits = 32768;
  const double expected = ErrorModel::ExpectedErrors(state, bits);
  double total = 0.0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(
        ErrorModel::SampleErrorCount(state, bits, static_cast<uint64_t>(i)));
  }
  EXPECT_NEAR(total / trials, expected, expected * 0.2 + 0.5);
}

TEST(ErrorModelTest, InjectFlipsExactCount) {
  std::vector<uint8_t> data(512, 0);
  const uint64_t flipped = ErrorModel::InjectErrors(data, 37, 7);
  EXPECT_EQ(flipped, 37u);
  uint64_t ones = 0;
  for (uint8_t b : data) {
    ones += static_cast<uint64_t>(__builtin_popcount(b));
  }
  EXPECT_EQ(ones, 37u);
}

TEST(ErrorModelTest, InjectDeterministic) {
  std::vector<uint8_t> a(256, 0xAA);
  std::vector<uint8_t> b(256, 0xAA);
  ErrorModel::InjectErrors(a, 10, 123);
  ErrorModel::InjectErrors(b, 10, 123);
  EXPECT_EQ(a, b);
}

TEST(ErrorModelTest, InjectCapsAtPayloadBits) {
  std::vector<uint8_t> data(2, 0);
  const uint64_t flipped = ErrorModel::InjectErrors(data, 1000, 5);
  EXPECT_LE(flipped, 16u);
}

// --- NAND device -----------------------------------------------------------

NandConfig SmallConfig() {
  NandConfig config;
  config.num_blocks = 8;
  config.wordlines_per_block = 4;
  config.page_size_bytes = 512;
  config.tech = CellTech::kPlc;
  config.seed = 1;
  config.store_payloads = true;
  return config;
}

std::vector<uint8_t> Payload(size_t n, uint8_t fill) { return std::vector<uint8_t>(n, fill); }

TEST(NandDeviceTest, GeometryMath) {
  const NandConfig config = SmallConfig();
  EXPECT_EQ(config.PagesPerBlock(CellTech::kPlc), 20u);   // 4 wordlines * 5 bits
  EXPECT_EQ(config.PagesPerBlock(CellTech::kQlc), 16u);
  EXPECT_EQ(config.PagesPerBlock(CellTech::kSlc), 4u);
  EXPECT_EQ(config.BlockBytes(CellTech::kPlc), 20u * 512u);
  EXPECT_EQ(config.DieBytes(CellTech::kPlc), 8u * 20u * 512u);
}

TEST(NandDeviceTest, FreshProgramReadRoundtrip) {
  SimClock clock;
  NandDevice device(SmallConfig(), &clock);
  const auto data = Payload(512, 0x5A);
  ASSERT_TRUE(device.Program({0, 0}, data).ok());
  auto read = device.Read({0, 0});
  ASSERT_TRUE(read.ok());
  // Fresh PLC at zero retention has RBER ~2e-5; a 4Kib page has ~0.08
  // expected errors, so a clean read is overwhelmingly likely.
  EXPECT_EQ(read.value().data, data);
  EXPECT_EQ(read.value().bit_errors, 0u);
}

TEST(NandDeviceTest, SequentialProgrammingEnforced) {
  SimClock clock;
  NandDevice device(SmallConfig(), &clock);
  EXPECT_EQ(device.Program({0, 1}, Payload(16, 1)).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(device.Program({0, 0}, Payload(16, 1)).ok());
  EXPECT_EQ(device.Program({0, 0}, Payload(16, 1)).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(device.Program({0, 1}, Payload(16, 1)).ok());
}

TEST(NandDeviceTest, ReadUnprogrammedFails) {
  SimClock clock;
  NandDevice device(SmallConfig(), &clock);
  EXPECT_EQ(device.Read({0, 0}).status().code(), StatusCode::kNotFound);
}

TEST(NandDeviceTest, AddressValidation) {
  SimClock clock;
  NandDevice device(SmallConfig(), &clock);
  EXPECT_EQ(device.Program({99, 0}, Payload(16, 1)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(device.Program({0, 999}, Payload(16, 1)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(device.Program({0, 0}, Payload(4096, 1)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(device.EraseBlock(99).code(), StatusCode::kInvalidArgument);
}

TEST(NandDeviceTest, EraseResetsAndCountsPec) {
  SimClock clock;
  NandDevice device(SmallConfig(), &clock);
  ASSERT_TRUE(device.Program({0, 0}, Payload(16, 1)).ok());
  EXPECT_EQ(device.block_info(0).programmed_pages, 1u);
  ASSERT_TRUE(device.EraseBlock(0).ok());
  EXPECT_EQ(device.block_info(0).pec, 1u);
  EXPECT_EQ(device.block_info(0).programmed_pages, 0u);
  // Page 0 is programmable again.
  EXPECT_TRUE(device.Program({0, 0}, Payload(16, 2)).ok());
}

TEST(NandDeviceTest, InitialPecPreAgesEveryBlock) {
  SimClock clock;
  NandConfig config = SmallConfig();
  config.initial_pec = 150;  // a fleet device entering the sim mid-life
  NandDevice device(config, &clock);
  EXPECT_EQ(device.block_info(0).pec, 150u);
  EXPECT_EQ(device.block_info(config.num_blocks - 1).pec, 150u);
  // Erase counts on top of the pre-aging, not from zero.
  ASSERT_TRUE(device.Program({0, 0}, Payload(16, 1)).ok());
  ASSERT_TRUE(device.EraseBlock(0).ok());
  EXPECT_EQ(device.block_info(0).pec, 151u);
}

TEST(NandDeviceTest, ModeChangeRules) {
  SimClock clock;
  NandDevice device(SmallConfig(), &clock);
  // Can't exceed native density (the die *is* PLC so everything is allowed;
  // build a QLC die to check the rule).
  NandConfig qlc_config = SmallConfig();
  qlc_config.tech = CellTech::kQlc;
  NandDevice qlc(qlc_config, &clock);
  EXPECT_EQ(qlc.SetBlockMode(0, CellTech::kPlc).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(qlc.SetBlockMode(0, CellTech::kSlc).ok());
  EXPECT_EQ(qlc.block_info(0).mode, CellTech::kSlc);

  // Mode change blocked while data present.
  ASSERT_TRUE(device.Program({1, 0}, Payload(16, 1)).ok());
  EXPECT_EQ(device.SetBlockMode(1, CellTech::kTlc).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(device.EraseBlock(1).ok());
  EXPECT_TRUE(device.SetBlockMode(1, CellTech::kTlc).ok());
  EXPECT_EQ(device.config().PagesPerBlock(CellTech::kTlc), 12u);
}

TEST(NandDeviceTest, PseudoModeRaisesEndurance) {
  SimClock clock;
  NandDevice device(SmallConfig(), &clock);
  const double native = device.EffectiveEndurance(0);
  ASSERT_TRUE(device.SetBlockMode(0, CellTech::kQlc).ok());
  EXPECT_GT(device.EffectiveEndurance(0), native);
}

TEST(NandDeviceTest, RetentionDegradesData) {
  SimClock clock;
  NandConfig config = SmallConfig();
  NandDevice device(config, &clock);
  ASSERT_TRUE(device.Program({0, 0}, Payload(512, 0xFF)).ok());
  clock.Advance(YearsToUs(5.0));  // five years on PLC hurts
  auto read = device.Read({0, 0});
  ASSERT_TRUE(read.ok());
  EXPECT_GT(read.value().bit_errors, 0u);
  EXPECT_NE(read.value().data, Payload(512, 0xFF));
}

TEST(NandDeviceTest, WearDegradesData) {
  SimClock clock;
  NandDevice device(SmallConfig(), &clock);
  // Cycle block 0 far past PLC endurance.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(device.EraseBlock(0).ok());
  }
  ASSERT_TRUE(device.Program({0, 0}, Payload(512, 0xAB)).ok());
  clock.Advance(DaysToUs(30));
  auto read = device.Read({0, 0});
  ASSERT_TRUE(read.ok());
  EXPECT_GT(read.value().rber, GetCellTechInfo(CellTech::kPlc).base_rber * 2);
}

TEST(NandDeviceTest, DeterministicReplay) {
  auto run = [] {
    SimClock clock;
    NandDevice device(SmallConfig(), &clock);
    IgnoreResult(device.Program({0, 0}, Payload(512, 0x77)));
    clock.Advance(YearsToUs(3.0));
    auto read = device.Read({0, 0});
    return read.value().data;
  };
  EXPECT_EQ(run(), run());
}

TEST(NandDeviceTest, PeekCleanBypassesErrors) {
  SimClock clock;
  NandDevice device(SmallConfig(), &clock);
  const auto data = Payload(512, 0x3C);
  ASSERT_TRUE(device.Program({0, 0}, data).ok());
  clock.Advance(YearsToUs(5.0));
  auto clean = device.PeekClean({0, 0});
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value(), data);
}

TEST(NandDeviceTest, PredictRberGrowsWithHorizon) {
  SimClock clock;
  NandDevice device(SmallConfig(), &clock);
  ASSERT_TRUE(device.Program({0, 0}, Payload(16, 1)).ok());
  auto now = device.PredictRber({0, 0}, 0.0);
  auto later = device.PredictRber({0, 0}, 2.0);
  ASSERT_TRUE(now.ok());
  ASSERT_TRUE(later.ok());
  EXPECT_GT(later.value(), now.value());
}

TEST(NandDeviceTest, LatencyAdvancesClockByMode) {
  SimClock clock;
  NandDevice device(SmallConfig(), &clock);
  const SimTimeUs t0 = clock.now();
  ASSERT_TRUE(device.Program({0, 0}, Payload(16, 1)).ok());
  EXPECT_EQ(clock.now() - t0, GetCellTechInfo(CellTech::kPlc).program_latency_us);
  const SimTimeUs t1 = clock.now();
  IgnoreResult(device.Read({0, 0}));
  EXPECT_EQ(clock.now() - t1, GetCellTechInfo(CellTech::kPlc).read_latency_us);
}

TEST(NandDeviceTest, StatsAccumulate) {
  SimClock clock;
  NandDevice device(SmallConfig(), &clock);
  ASSERT_TRUE(device.Program({0, 0}, Payload(16, 1)).ok());
  IgnoreResult(device.Read({0, 0}));
  ASSERT_TRUE(device.EraseBlock(0).ok());
  const NandStats& stats = device.stats();
  EXPECT_EQ(stats.programs, 1u);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.erases, 1u);
  EXPECT_EQ(stats.bytes_programmed, 512u);
  EXPECT_GT(stats.busy_us, 0u);
}

TEST(NandDeviceTest, MetadataOnlyModeStillCountsErrors) {
  SimClock clock;
  NandConfig config = SmallConfig();
  config.store_payloads = false;
  NandDevice device(config, &clock);
  ASSERT_TRUE(device.Program({0, 0}, {}).ok());
  clock.Advance(YearsToUs(5.0));
  auto read = device.Read({0, 0});
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().data.empty());
  EXPECT_GT(read.value().bit_errors, 0u);
}

TEST(NandDeviceTest, WearMetrics) {
  SimClock clock;
  NandDevice device(SmallConfig(), &clock);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(device.EraseBlock(0).ok());
  }
  EXPECT_NEAR(device.MaxWearRatio(), 30.0 / 300.0, 1e-9);
  EXPECT_NEAR(device.MeanPec(), 30.0 / 8.0, 1e-9);
}

}  // namespace
}  // namespace sos
