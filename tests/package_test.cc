// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Tests for the multi-die NAND package: addressing, queued timing, and the
// near-linear sequential-throughput scaling the paper's §4.5 performance
// argument rests on.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/flash/nand_package.h"

namespace sos {
namespace {

NandPackageConfig SmallPackage(uint32_t dies) {
  NandPackageConfig config;
  config.die.num_blocks = 8;
  config.die.wordlines_per_block = 8;
  config.die.page_size_bytes = 2048;
  config.die.tech = CellTech::kPlc;
  config.die.seed = 3;
  config.num_dies = dies;
  return config;
}

TEST(NandPackageTest, Addressing) {
  SimClock clock;
  NandPackage package(SmallPackage(4), &clock);
  EXPECT_EQ(package.num_dies(), 4u);
  EXPECT_EQ(package.total_blocks(), 32u);
  EXPECT_EQ(package.DieOfBlock(0), 0u);
  EXPECT_EQ(package.DieOfBlock(7), 0u);
  EXPECT_EQ(package.DieOfBlock(8), 1u);
  EXPECT_EQ(package.DieOfBlock(31), 3u);
  EXPECT_EQ(package.LocalBlock(31), 7u);
  EXPECT_EQ(package.QueueErase(32).code(), StatusCode::kInvalidArgument);
}

TEST(NandPackageTest, QueuedOpsOverlapAcrossDies) {
  SimClock clock;
  NandPackage package(SmallPackage(4), &clock);
  const std::vector<uint8_t> page(2048, 1);
  // One program per die: the batch takes one program latency, not four.
  for (uint32_t die = 0; die < 4; ++die) {
    ASSERT_TRUE(package.QueueProgram({die * 8, 0}, page).ok());
  }
  const SimTimeUs makespan = package.Drain();
  EXPECT_EQ(makespan, GetCellTechInfo(CellTech::kPlc).program_latency_us);
}

TEST(NandPackageTest, SameDieOpsSerialize) {
  SimClock clock;
  NandPackage package(SmallPackage(4), &clock);
  const std::vector<uint8_t> page(2048, 1);
  ASSERT_TRUE(package.QueueProgram({0, 0}, page).ok());
  ASSERT_TRUE(package.QueueProgram({0, 1}, page).ok());
  EXPECT_EQ(package.Drain(), 2 * GetCellTechInfo(CellTech::kPlc).program_latency_us);
}

TEST(NandPackageTest, DrainIsIdempotent) {
  SimClock clock;
  NandPackage package(SmallPackage(2), &clock);
  ASSERT_TRUE(package.QueueProgram({0, 0}, std::vector<uint8_t>(2048, 1)).ok());
  EXPECT_GT(package.Drain(), 0u);
  EXPECT_EQ(package.Drain(), 0u);
}

TEST(NandPackageTest, StripeRoundtrip) {
  SimClock clock;
  NandPackage package(SmallPackage(4), &clock);
  Rng rng(5);
  std::vector<uint8_t> data(64 * kKiB);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  ASSERT_TRUE(package.StripeWrite(0, data).ok());
  auto read = package.StripeRead(0, data.size());
  ASSERT_TRUE(read.ok());
  // Raw PLC reads carry a few bit errors even fresh (base RBER 2e-5 over
  // 512 Kib ~ 10 expected flips); the stripe layout must be byte-exact
  // beyond that noise floor.
  ASSERT_EQ(read.value().data.size(), data.size());
  uint64_t diff_bits = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    diff_bits += static_cast<uint64_t>(
        __builtin_popcount(static_cast<unsigned>(read.value().data[i] ^ data[i])));
  }
  EXPECT_LT(diff_bits, 64u);
  EXPECT_GT(read.value().makespan_us, 0u);
}

TEST(NandPackageTest, SequentialThroughputScalesWithDies) {
  // The §4.5 argument quantified: sequential read throughput grows near
  // linearly with die count.
  auto throughput_mbps = [](uint32_t dies) {
    SimClock clock;
    NandPackageConfig config = SmallPackage(dies);
    config.die.store_payloads = false;
    NandPackage package(config, &clock);
    // Must fit the single-die case: 8 blocks x 40 pages x 2 KiB = 640 KiB.
    const uint64_t bytes = 512 * kKiB;
    EXPECT_TRUE(package.StripeWrite(0, std::vector<uint8_t>(bytes)).ok());
    auto read = package.StripeRead(0, bytes);
    EXPECT_TRUE(read.ok());
    return static_cast<double>(bytes) / static_cast<double>(read.value().makespan_us);
  };
  const double one = throughput_mbps(1);
  const double four = throughput_mbps(4);
  const double eight = throughput_mbps(8);
  EXPECT_NEAR(four / one, 4.0, 0.4);
  EXPECT_NEAR(eight / one, 8.0, 0.8);
}

TEST(NandPackageTest, StripePastDieFails) {
  SimClock clock;
  NandPackage package(SmallPackage(1), &clock);
  // One die of 8 blocks x 40 pages x 2 KiB = 640 KiB; ask for more.
  const std::vector<uint8_t> big(kMiB, 1);
  EXPECT_EQ(package.StripeWrite(0, big).code(), StatusCode::kOutOfSpace);
}

TEST(NandPackageTest, DiesHaveIndependentErrorStreams) {
  SimClock clock;
  NandPackageConfig config = SmallPackage(2);
  config.die.tech = CellTech::kPlc;
  NandPackage package(config, &clock);
  const std::vector<uint8_t> page(2048, 0xFF);
  ASSERT_TRUE(package.QueueProgram({0, 0}, page).ok());   // die 0
  ASSERT_TRUE(package.QueueProgram({8, 0}, page).ok());   // die 1
  package.Drain();
  clock.Advance(YearsToUs(6.0));
  auto a = package.QueueRead({0, 0});
  auto b = package.QueueRead({8, 0});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same state, different seeds: the corrupted payloads differ.
  EXPECT_NE(a.value().data, b.value().data);
}

}  // namespace
}  // namespace sos
