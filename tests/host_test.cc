// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Tests for the host layer: extent file system over a real SosDevice, and
// the mobile workload generator + trace format.

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/flash/fault_hook.h"
#include "src/host/file_system.h"
#include "src/host/workload.h"
#include "src/sos/sos_device.h"

namespace sos {
namespace {

SosDeviceConfig SmallDevice() {
  SosDeviceConfig config;
  config.nand.num_blocks = 32;
  config.nand.wordlines_per_block = 4;
  config.nand.page_size_bytes = 512;
  config.nand.tech = CellTech::kPlc;
  config.nand.seed = 3;
  config.nand.store_payloads = true;
  // FS-mechanics tests want deterministic clean reads; the paper-default
  // ECC-less SPARE pool flips the odd fresh bit, so use weak BCH here.
  config.spare_ecc = EccPreset::kWeakBch;
  return config;
}

std::vector<uint8_t> Content(size_t n, uint8_t seed) {
  std::vector<uint8_t> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(seed + i * 7);
  }
  return data;
}

FileMeta PhotoMeta(uint64_t size) {
  FileMeta meta;
  meta.type = FileType::kPhoto;
  meta.path = "dcim/camera/img_1.jpg";
  meta.size_bytes = size;
  return meta;
}

struct FsFixture {
  SimClock clock;
  SosDevice device;
  ExtentFileSystem fs;
  PlacementDirectory placements;
  PlacementHandle critical;
  PlacementHandle degradable;

  FsFixture()
      : device(SmallDevice(), &clock),
        fs(&device, &clock),
        placements(&device),
        critical(placements.For({Durability::kCritical}).value()),
        degradable(placements.For({Durability::kDegradable}).value()) {}
};

// --- File system -----------------------------------------------------------

TEST(FileSystemTest, CreateReadRoundtrip) {
  FsFixture f;
  const auto content = Content(1500, 1);
  auto id = f.fs.CreateFile(PhotoMeta(1500), content, f.critical);
  ASSERT_TRUE(id.ok());
  auto read = f.fs.ReadFile(id.value());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().data, content);
  EXPECT_TRUE(read.value().crc_ok);
  EXPECT_FALSE(read.value().degraded);
}

TEST(FileSystemTest, ReadUpdatesAccessStats) {
  FsFixture f;
  auto id = f.fs.CreateFile(PhotoMeta(512), Content(512, 2), f.critical);
  ASSERT_TRUE(id.ok());
  const uint32_t reads_before = f.fs.Lookup(id.value())->read_count;
  ASSERT_TRUE(f.fs.ReadFile(id.value()).ok());
  EXPECT_EQ(f.fs.Lookup(id.value())->read_count, reads_before + 1);
}

TEST(FileSystemTest, MissingFileFails) {
  FsFixture f;
  EXPECT_EQ(f.fs.ReadFile(999).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(f.fs.DeleteFile(999).code(), StatusCode::kNotFound);
  EXPECT_EQ(f.fs.OverwriteFile(999, {}).code(), StatusCode::kNotFound);
  EXPECT_EQ(f.fs.Lookup(999), nullptr);
}

TEST(FileSystemTest, OverwriteInPlace) {
  FsFixture f;
  auto id = f.fs.CreateFile(PhotoMeta(kKiB), Content(kKiB, 3), f.critical);
  ASSERT_TRUE(id.ok());
  const auto updated = Content(900, 9);
  ASSERT_TRUE(f.fs.OverwriteFile(id.value(), updated).ok());
  auto read = f.fs.ReadFile(id.value());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().data, updated);
  EXPECT_TRUE(read.value().crc_ok);
}

TEST(FileSystemTest, OverwriteTooLargeRejected) {
  FsFixture f;
  auto id = f.fs.CreateFile(PhotoMeta(512), Content(512, 3), f.critical);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(f.fs.OverwriteFile(id.value(), Content(4096, 1)).code(),
            StatusCode::kInvalidArgument);
}

TEST(FileSystemTest, DeleteFreesSpace) {
  FsFixture f;
  const uint64_t free_before = f.fs.FreeBlocks();
  auto id = f.fs.CreateFile(PhotoMeta(4096), Content(4096, 4), f.critical);
  ASSERT_TRUE(id.ok());
  EXPECT_LT(f.fs.FreeBlocks(), free_before);
  ASSERT_TRUE(f.fs.DeleteFile(id.value()).ok());
  EXPECT_EQ(f.fs.FreeBlocks(), free_before);
  EXPECT_EQ(f.fs.Stats().files, 0u);
}

TEST(FileSystemTest, TrimmedBlocksAreReused) {
  FsFixture f;
  auto id1 = f.fs.CreateFile(PhotoMeta(2048), Content(2048, 5), f.critical);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(f.fs.DeleteFile(id1.value()).ok());
  auto id2 = f.fs.CreateFile(PhotoMeta(2048), Content(2048, 6), f.critical);
  ASSERT_TRUE(id2.ok());
  auto read = f.fs.ReadFile(id2.value());
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().crc_ok);
}

TEST(FileSystemTest, OutOfSpace) {
  FsFixture f;
  const uint32_t bs = f.device.block_size();
  const uint64_t capacity_bytes = f.device.capacity_blocks() * bs;
  auto big = f.fs.CreateFile(PhotoMeta(capacity_bytes * 2), {}, f.critical);
  EXPECT_EQ(big.status().code(), StatusCode::kOutOfSpace);
}

TEST(FileSystemTest, FillThenFail) {
  FsFixture f;
  Status last = Status::Ok();
  int created = 0;
  for (int i = 0; i < 10000; ++i) {
    auto id = f.fs.CreateFile(PhotoMeta(4096), {}, f.critical);
    if (!id.ok()) {
      last = id.status();
      break;
    }
    ++created;
  }
  EXPECT_EQ(last.code(), StatusCode::kOutOfSpace);
  EXPECT_GT(created, 10);
  // FS-level accounting refused before the device physically died.
  EXPECT_FALSE(f.fs.Stats().overcommitted);
}

TEST(FileSystemTest, ReclassifyMovesPools) {
  FsFixture f;
  auto id = f.fs.CreateFile(PhotoMeta(2048), Content(2048, 7), f.critical);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(f.fs.PlacementOf(id.value()), f.critical);
  const auto sys_before = f.device.SysSnapshot().valid_pages;
  ASSERT_TRUE(f.fs.ReclassifyFile(id.value(), f.degradable).ok());
  EXPECT_EQ(f.fs.PlacementOf(id.value()), f.degradable);
  EXPECT_LT(f.device.SysSnapshot().valid_pages, sys_before);
  EXPECT_GT(f.device.SpareSnapshot().valid_pages, 0u);
  // Content survives the migration.
  auto read = f.fs.ReadFile(id.value());
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().crc_ok);
}

TEST(FileSystemTest, ScanFilesSeesAll) {
  FsFixture f;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(f.fs.CreateFile(PhotoMeta(512), Content(512, 1), f.critical).ok());
  }
  EXPECT_EQ(f.fs.ScanFiles().size(), 5u);
  EXPECT_EQ(f.fs.FileIds().size(), 5u);
}

// --- Degraded reads at the device boundary ----------------------------------

// SPARE (approximate storage, paper-default no ECC): aged data is served
// degraded-but-flagged. A read that returns different bytes than were
// written MUST carry degraded=true -- silent corruption is the one outcome
// the SPARE contract forbids.
TEST(SosDeviceDegradedReadTest, SpareServesAgedDataDegradedButFlagged) {
  SosDeviceConfig config = SmallDevice();
  config.spare_ecc = EccPreset::kNone;  // the real paper configuration
  SimClock clock;
  SosDevice device(config, &clock);
  const uint32_t page = device.block_size();
  const PlacementHandle degradable = device.OpenPlacement({Durability::kDegradable}).value();
  constexpr uint64_t kLbas = 10;
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    ASSERT_TRUE(device.Write(lba, Content(page, static_cast<uint8_t>(lba)), degradable).ok());
  }
  clock.Advance(YearsToUs(3.0));
  uint64_t degraded = 0;
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    SCOPED_TRACE("lba " + std::to_string(lba));
    auto read = device.Read(lba);
    ASSERT_TRUE(read.ok());  // approximate storage never refuses a read
    const bool wrong = read.value().data != Content(page, static_cast<uint8_t>(lba));
    if (wrong) {
      EXPECT_TRUE(read.value().degraded) << "silently corrupted SPARE read";
    }
    degraded += read.value().degraded ? 1 : 0;
  }
  EXPECT_GT(degraded, 0u) << "aging produced no corruption; tune the test";
}

// Injects device-read failures: the first `fail_count` reads fail with
// `code`, everything else proceeds. Deterministic stand-in for a flaky bus
// (kUnavailable) or a dead die (kWornOut).
class FailingReadHook final : public NandFaultHook {
 public:
  FailingReadHook(uint64_t fail_count, StatusCode code) : remaining_(fail_count), code_(code) {}
  NandFaultAction OnNandOp(NandOpKind op, uint32_t, uint32_t) override {
    if (op == NandOpKind::kRead && remaining_ > 0) {
      --remaining_;
      return NandFaultAction::Fail(code_, "injected read fault");
    }
    return NandFaultAction::None();
  }

 private:
  uint64_t remaining_;
  StatusCode code_;
};

// SYS (strict fidelity): a host read either recovers the exact bytes or
// fails loudly -- in neither case do wrong bytes cross the host boundary.
// A transient device fault is absorbed by the FTL's deterministic retry;
// a permanent one surfaces as an error, not as corruption.
TEST(SosDeviceDegradedReadTest, SysRecoversExactlyOrErrorsLoudly) {
  SimClock clock;
  SosDevice device(SmallDevice(), &clock);
  const uint32_t page = device.block_size();
  ASSERT_TRUE(
      device.Write(3, Content(page, 3), device.OpenPlacement({Durability::kCritical}).value())
          .ok());

  // Transient: the single failed device read is retried and served exactly.
  FailingReadHook flaky(1, StatusCode::kUnavailable);
  device.ftl().nand().SetFaultHook(&flaky);
  auto read = device.Read(3);
  device.ftl().nand().SetFaultHook(nullptr);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read.value().degraded);
  EXPECT_EQ(read.value().data, Content(page, 3));

  // Permanent (worn-out die): every attempt fails; the host sees a loud
  // error and the strict pool records no degraded delivery.
  FailingReadHook dead(~0ull, StatusCode::kWornOut);
  device.ftl().nand().SetFaultHook(&dead);
  auto dead_read = device.Read(3);
  device.ftl().nand().SetFaultHook(nullptr);
  ASSERT_FALSE(dead_read.ok());
  EXPECT_EQ(dead_read.status().code(), StatusCode::kWornOut);
  EXPECT_EQ(device.ftl().stats().degraded_reads(), 0u);

  // The device itself is healthy again once the fault clears.
  auto healthy = device.Read(3);
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy.value().data, Content(page, 3));
}

// --- Workload generator ----------------------------------------------------

TEST(WorkloadTest, DeterministicForSeed) {
  MobileWorkloadConfig config;
  config.seed = 11;
  MobileWorkloadGenerator a(config);
  MobileWorkloadGenerator b(config);
  for (uint64_t day = 0; day < 5; ++day) {
    const auto ea = a.Day(day);
    const auto eb = b.Day(day);
    ASSERT_EQ(ea.size(), eb.size()) << "day " << day;
    for (size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].at, eb[i].at);
      EXPECT_EQ(static_cast<int>(ea[i].op), static_cast<int>(eb[i].op));
      EXPECT_EQ(ea[i].file_ref, eb[i].file_ref);
    }
  }
}

TEST(WorkloadTest, EventsSortedWithinDay) {
  MobileWorkloadConfig config;
  config.seed = 12;
  MobileWorkloadGenerator gen(config);
  for (uint64_t day = 0; day < 10; ++day) {
    const auto events = gen.Day(day);
    const SimTimeUs day_start = day * kUsPerDay;
    SimTimeUs prev = day_start;
    for (const auto& ev : events) {
      EXPECT_GE(ev.at, prev);
      EXPECT_LT(ev.at, day_start + kUsPerDay);
      prev = ev.at;
    }
  }
}

TEST(WorkloadTest, ReadsReferenceLiveFiles) {
  MobileWorkloadConfig config;
  config.seed = 13;
  MobileWorkloadGenerator gen(config);
  std::set<uint64_t> live;
  for (uint64_t day = 0; day < 20; ++day) {
    for (const auto& ev : gen.Day(day)) {
      switch (ev.op) {
        case WorkloadOp::kCreate:
          EXPECT_TRUE(live.insert(ev.file_ref).second);
          break;
        case WorkloadOp::kRead:
        case WorkloadOp::kUpdate:
          EXPECT_TRUE(live.contains(ev.file_ref)) << "day " << day;
          break;
        case WorkloadOp::kDelete:
          EXPECT_EQ(live.erase(ev.file_ref), 1u);
          break;
      }
    }
  }
  EXPECT_EQ(gen.live_files(), live.size());
}

TEST(WorkloadTest, MediaHeavyMix) {
  MobileWorkloadConfig config;
  config.seed = 14;
  MobileWorkloadGenerator gen(config);
  uint64_t media_bytes = 0;
  uint64_t total_bytes = 0;
  for (uint64_t day = 0; day < 60; ++day) {
    for (const auto& ev : gen.Day(day)) {
      if (ev.op != WorkloadOp::kCreate) {
        continue;
      }
      total_bytes += ev.meta.size_bytes;
      if (ev.meta.type == FileType::kPhoto || ev.meta.type == FileType::kVideo ||
          ev.meta.type == FileType::kAudio) {
        media_bytes += ev.meta.size_bytes;
      }
    }
  }
  ASSERT_GT(total_bytes, 0u);
  // Paper [66-68]: media dominates personal storage bytes.
  EXPECT_GT(static_cast<double>(media_bytes) / static_cast<double>(total_bytes), 0.5);
}

TEST(WorkloadTest, IntensityScalesWrites) {
  MobileWorkloadConfig light;
  light.seed = 15;
  MobileWorkloadConfig heavy = light;
  heavy.intensity = 4.0;
  MobileWorkloadGenerator gl(light);
  MobileWorkloadGenerator gh(heavy);
  uint64_t creates_light = 0;
  uint64_t creates_heavy = 0;
  for (uint64_t day = 0; day < 30; ++day) {
    for (const auto& ev : gl.Day(day)) {
      creates_light += ev.op == WorkloadOp::kCreate ? 1 : 0;
    }
    for (const auto& ev : gh.Day(day)) {
      creates_heavy += ev.op == WorkloadOp::kCreate ? 1 : 0;
    }
  }
  EXPECT_GT(creates_heavy, creates_light * 2);
}

TEST(WorkloadTest, DropRefRemovesFromLiveSet) {
  MobileWorkloadConfig config;
  config.seed = 16;
  MobileWorkloadGenerator gen(config);
  const auto events = gen.Day(0);
  const size_t live_before = gen.live_files();
  ASSERT_GT(live_before, 0u);
  for (const auto& ev : events) {
    if (ev.op == WorkloadOp::kCreate) {
      gen.DropRef(ev.file_ref);
      break;
    }
  }
  EXPECT_EQ(gen.live_files(), live_before - 1);
}

TEST(WorkloadTest, TraceRoundtrip) {
  MobileWorkloadConfig config;
  config.seed = 17;
  MobileWorkloadGenerator gen(config);
  std::vector<WorkloadEvent> events;
  for (uint64_t day = 0; day < 3; ++day) {
    auto day_events = gen.Day(day);
    events.insert(events.end(), day_events.begin(), day_events.end());
  }
  const std::string text = SerializeTrace(events);
  const auto parsed = ParseTrace(text);
  ASSERT_EQ(parsed.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].at, events[i].at);
    EXPECT_EQ(static_cast<int>(parsed[i].op), static_cast<int>(events[i].op));
    EXPECT_EQ(parsed[i].file_ref, events[i].file_ref);
    if (events[i].op == WorkloadOp::kCreate) {
      EXPECT_EQ(parsed[i].meta.type, events[i].meta.type);
      EXPECT_EQ(parsed[i].meta.size_bytes, events[i].meta.size_bytes);
      EXPECT_EQ(parsed[i].meta.path, events[i].meta.path);
      EXPECT_EQ(parsed[i].meta.true_priority, events[i].meta.true_priority);
    }
  }
}

TEST(WorkloadTest, ParseSkipsMalformedLines) {
  const auto events = ParseTrace("garbage line\nR 100 1\nX 1 2\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].file_ref, 1u);
}

}  // namespace
}  // namespace sos
