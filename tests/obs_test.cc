// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Unit tests for the telemetry layer (src/obs): metric registration order,
// histogram bucket edges, snapshot replay, JSON stability, and the trace
// sink's keep-first overflow policy. The cross-thread determinism of the
// *exports* is determinism_test's job; this file pins the local semantics
// those guarantees are built from.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "src/obs/metrics.h"
#include "src/obs/scoped_latency.h"
#include "src/obs/trace.h"

namespace sos::obs {
namespace {

TEST(MetricRegistryTest, ExportOrderIsRegistrationOrder) {
  MetricRegistry registry;
  registry.SetCounter("z.last_alphabetically_first_registered", 1);
  registry.SetGauge("a.first_alphabetically_last_registered", 2.0);
  registry.SetCounter("m.middle", 3);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "z.last_alphabetically_first_registered");
  EXPECT_EQ(snapshot[1].name, "a.first_alphabetically_last_registered");
  EXPECT_EQ(snapshot[2].name, "m.middle");

  // Re-setting an existing name updates in place; it must not re-order.
  registry.SetCounter("z.last_alphabetically_first_registered", 10);
  const MetricsSnapshot again = registry.Snapshot();
  ASSERT_EQ(again.size(), 3u);
  EXPECT_EQ(again[0].name, "z.last_alphabetically_first_registered");
  EXPECT_EQ(again[0].counter, 10u);
}

TEST(MetricRegistryTest, CountersAndGaugesRoundTrip) {
  MetricRegistry registry;
  Counter* counter = registry.AddCounter("c");
  Gauge* gauge = registry.AddGauge("g");
  counter->Add(7);
  counter->Add(3);
  gauge->Set(2.5);
  EXPECT_EQ(counter->value(), 10u);
  EXPECT_EQ(gauge->value(), 2.5);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].kind, MetricKind::kCounter);
  EXPECT_EQ(snapshot[0].counter, 10u);
  EXPECT_EQ(snapshot[1].kind, MetricKind::kGauge);
  EXPECT_EQ(snapshot[1].gauge, 2.5);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({10.0, 100.0});
  h.Observe(0.0);     // <= 10
  h.Observe(10.0);    // == bound: inclusive, first bucket
  h.Observe(10.5);    // <= 100
  h.Observe(100.0);   // == bound: second bucket
  h.Observe(1000.0);  // overflow bucket

  ASSERT_EQ(h.buckets().size(), 3u);  // two bounds + overflow
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0.0 + 10.0 + 10.5 + 100.0 + 1000.0);
}

TEST(HistogramTest, SnapshotReplayPreservesBuckets) {
  MetricRegistry source;
  Histogram h = Histogram::LatencyUs();
  h.Observe(5.0);
  h.Observe(75.0);
  h.Observe(1e9);  // overflow
  source.SetHistogram("lat", h);

  // Append replays rows through Histogram::FromParts; the replayed
  // representation must be indistinguishable from the original.
  MetricRegistry target;
  target.Append(source.Snapshot(), "copy.");
  const MetricsSnapshot snapshot = target.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "copy.lat");
  EXPECT_EQ(snapshot[0].kind, MetricKind::kHistogram);
  EXPECT_EQ(snapshot[0].count, 3u);
  EXPECT_EQ(snapshot[0].bounds, h.bounds());
  EXPECT_EQ(snapshot[0].buckets, h.buckets());
  EXPECT_EQ(snapshot[0].sum, h.sum());
}

TEST(MetricsJsonTest, RenderingIsByteStableAcrossIdenticalRegistries) {
  auto build = [] {
    MetricRegistry registry;
    registry.SetCounter("sim.writes", 42);
    registry.SetGauge("sim.wear", 1.0 / 3.0);  // exercises %.17g
    Histogram h({1.0, 2.0});
    h.Observe(1.5);
    registry.SetHistogram("sim.lat", h);
    return registry.ToJson();
  };
  const std::string a = build();
  const std::string b = build();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"sim.writes\""), std::string::npos);
  EXPECT_NE(a.find("\"kind\": \"histogram\""), std::string::npos);
  // The overflow bucket renders with an "inf" bound.
  EXPECT_NE(a.find("\"le\": \"inf\""), std::string::npos);
}

TEST(TraceSinkTest, KeepsFirstEventsAndCountsDrops) {
  TraceSink sink(2);
  sink.Emit(TraceEvent{1, "first"});
  sink.Emit(TraceEvent{2, "second"});
  sink.Emit(TraceEvent{3, "dropped"});
  sink.Emit(TraceEvent{4, "dropped"});

  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].type, "first");
  EXPECT_EQ(sink.events()[1].type, "second");
  EXPECT_EQ(sink.dropped(), 2u);

  const std::string jsonl = TraceToJsonl(sink.events(), sink.dropped());
  EXPECT_NE(jsonl.find("\"type\": \"trace.dropped\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"count\": 2"), std::string::npos);
}

TEST(TraceSinkTest, ToMetricsExportsEventAndDropCounters) {
  TraceSink sink(1);
  sink.Emit(TraceEvent{0, "kept"});
  sink.Emit(TraceEvent{1, "dropped"});

  MetricRegistry registry;
  sink.ToMetrics(registry, "dev.");
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].name, "dev.trace.events");
  EXPECT_EQ(snapshot[0].counter, 1u);
  EXPECT_EQ(snapshot[1].name, "dev.trace.dropped_events");
  EXPECT_EQ(snapshot[1].counter, 1u);
}

TEST(HistogramTest, MergeAddsBucketsAndRejectsShapeMismatch) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  a.Observe(0.5);
  b.Observe(1.5);
  b.Observe(10.0);  // overflow
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.buckets()[0], 1u);
  EXPECT_EQ(a.buckets()[1], 1u);
  EXPECT_EQ(a.buckets()[2], 1u);
  EXPECT_DOUBLE_EQ(a.sum(), 12.0);

  Histogram mismatched({1.0, 3.0});
  EXPECT_FALSE(a.Merge(mismatched).ok());
}

TEST(TraceEventTest, FieldsRenderInInsertionOrder) {
  TraceEvent event{123, "ftl.gc.victim"};
  event.With("pool", "SYS").WithU64("block", 7).WithF64("score", 0.5).WithI64("delta", -3);
  const std::string json = TraceEventToJson(event);
  EXPECT_EQ(json,
            "{\"t_us\": 123, \"type\": \"ftl.gc.victim\", \"pool\": \"SYS\", "
            "\"block\": 7, \"score\": 0.5, \"delta\": -3}");
}

TEST(ScopedLatencyTest, ObservesSimTimeDelta) {
  SimClock clock;
  Histogram h = Histogram::LatencyUs();
  {
    ScopedLatency timer(&clock, &h);
    clock.Advance(40);  // lands in the <=50us bucket
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 40.0);

  // Null histogram / null clock are no-ops, not crashes.
  {
    ScopedLatency noop(nullptr, &h);
  }
  {
    ScopedLatency noop(&clock, nullptr);
  }
  EXPECT_EQ(h.count(), 1u);
}

}  // namespace
}  // namespace sos::obs
