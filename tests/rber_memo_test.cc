// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Accuracy and determinism contract of the memoized RBER path
// (src/flash/rber_cache.h):
//
//   1. memo ON: |memo - exact| <= kRelErrorBound * exact + kAbsErrorBound
//      across the full wear x retention x disturb x retry grid, for every
//      cell technology and both error-model kinds. A violation is a test
//      failure, never a reason to loosen the bound silently.
//   2. out-of-range inputs (retention beyond the grid, pec beyond the memo
//      cap, wear ratio beyond the sigma axis, disturb beyond the linear
//      window) fall back to the exact model *bitwise*.
//   3. memo OFF (the default): pure passthrough, bitwise equal to
//      ComputeRber -- this is what keeps every golden byte-identical.
//   4. the config switches default off (NandConfig::rber_memo,
//      FtlConfig/SosDeviceConfig::batched_relocation).

#include <cmath>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>
#include "src/flash/cell_tech.h"
#include "src/flash/error_model.h"
#include "src/flash/nand_device.h"
#include "src/flash/rber_cache.h"
#include "src/flash/voltage_model.h"
#include "src/ftl/ftl.h"
#include "src/sos/sos_device.h"

namespace sos {
namespace {

constexpr CellTech kAllTechs[] = {CellTech::kSlc, CellTech::kMlc, CellTech::kTlc,
                                  CellTech::kQlc, CellTech::kPlc};
constexpr ErrorModelKind kKinds[] = {ErrorModelKind::kPhenomenological, ErrorModelKind::kVoltage};

PageErrorState StateFor(CellTech tech, double endurance, uint32_t pec, double t, uint32_t reads) {
  PageErrorState state;
  state.mode = tech;
  state.endurance_pec = endurance;
  state.pec_at_program = pec;
  state.retention_years = t;
  state.reads_since_program = reads;
  return state;
}

TEST(RberMemoTest, MemoizedWithinDocumentedBoundOnFullGrid) {
  constexpr double kTs[] = {0.0, 1e-4, 1e-3, 1e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 24.9};
  constexpr uint32_t kReads[] = {0, 100, 2000};
  constexpr int kRetries[] = {0, 1, 3};
  for (ErrorModelKind kind : kKinds) {
    RberCache memo(kind, true);
    ASSERT_TRUE(memo.memoizing());
    for (CellTech tech : kAllTechs) {
      const double endurance = static_cast<double>(GetCellTechInfo(tech).rated_endurance_pec);
      for (uint32_t i = 0; i < 16; ++i) {
        const uint32_t pec =
            static_cast<uint32_t>(endurance * 1.95 * static_cast<double>(i) / 15.0);
        for (double t : kTs) {
          for (uint32_t reads : kReads) {
            for (int retry : kRetries) {
              const PageErrorState state = StateFor(tech, endurance, pec, t, reads);
              const double exact = ComputeRber(kind, state, retry);
              const double got = memo.Rber(state, retry);
              EXPECT_LE(std::abs(got - exact),
                        RberCache::kRelErrorBound * exact + RberCache::kAbsErrorBound)
                  << CellTechName(tech) << " kind=" << static_cast<int>(kind) << " pec=" << pec
                  << " t=" << t << " reads=" << reads << " retry=" << retry
                  << " exact=" << exact << " memo=" << got;
            }
          }
        }
      }
    }
  }
}

TEST(RberMemoTest, OutOfRangeInputsFallBackToExactBitwise) {
  for (ErrorModelKind kind : kKinds) {
    RberCache memo(kind, true);
    for (CellTech tech : {CellTech::kTlc, CellTech::kPlc}) {
      SCOPED_TRACE(std::string(CellTechName(tech)));
      const double endurance = static_cast<double>(GetCellTechInfo(tech).rated_endurance_pec);
      // Retention beyond the grid ceiling.
      PageErrorState state = StateFor(tech, endurance, 100, 30.0, 10);
      EXPECT_EQ(memo.Rber(state, 0), ComputeRber(kind, state, 0));
      // PEC beyond the memo cap.
      state = StateFor(tech, endurance, RberCache::kMaxMemoPec + 5, 0.5, 10);
      EXPECT_EQ(memo.Rber(state, 1), ComputeRber(kind, state, 1));
      // Wear ratio beyond the sigma axis: an exact fallback on the voltage
      // path only (the pheno memo stores base*wear per PEC exactly, so high
      // wear stays memoized there and is covered by the bound test).
      if (kind == ErrorModelKind::kVoltage) {
        state = StateFor(tech, endurance,
                         static_cast<uint32_t>(endurance * (RberCache::kMaxWearRatio + 0.5)), 0.5,
                         10);
        EXPECT_EQ(memo.Rber(state, 0), ComputeRber(kind, state, 0));
      }
      // An endurance that changed under the cache: refuse, exact path.
      state = StateFor(tech, endurance * 2.0, 100, 0.5, 10);
      EXPECT_EQ(memo.Rber(state, 0), ComputeRber(kind, state, 0));
    }
    // Read disturb beyond the first-order window (voltage path).
    if (kind == ErrorModelKind::kVoltage) {
      const CellTechInfo& info = GetCellTechInfo(CellTech::kPlc);
      const double per_read = VoltageModel::ParamsFor(CellTech::kPlc).disturb_per_read;
      const uint32_t reads =
          static_cast<uint32_t>(RberCache::kMaxDisturbWindow / per_read) + 1000;
      const PageErrorState state =
          StateFor(CellTech::kPlc, static_cast<double>(info.rated_endurance_pec), 50, 0.5, reads);
      EXPECT_EQ(memo.Rber(state, 0), ComputeRber(kind, state, 0));
    }
  }
}

TEST(RberMemoTest, MemoOffIsBitwisePassthrough) {
  for (ErrorModelKind kind : kKinds) {
    RberCache off(kind, false);
    ASSERT_FALSE(off.memoizing());
    for (CellTech tech : kAllTechs) {
      const double endurance = static_cast<double>(GetCellTechInfo(tech).rated_endurance_pec);
      for (uint32_t pec : {0u, 37u, 500u, 5000u}) {
        for (double t : {0.0, 0.01, 1.0, 7.5}) {
          for (int retry : {0, 2}) {
            const PageErrorState state = StateFor(tech, endurance, pec, t, 123);
            EXPECT_EQ(off.Rber(state, retry), ComputeRber(kind, state, retry))
                << CellTechName(tech) << " pec=" << pec << " t=" << t;
          }
        }
      }
    }
  }
}

TEST(RberMemoTest, RetryTrackingSaturationIsMemoizedNotFallback) {
  // VoltageModel::RetryTracking saturates at level 3, so the memo clamps
  // higher retry levels onto the level-3 table instead of dropping to the
  // exact path; the bound must still hold there.
  RberCache memo(ErrorModelKind::kVoltage, true);
  const double endurance = static_cast<double>(GetCellTechInfo(CellTech::kQlc).rated_endurance_pec);
  const PageErrorState state = StateFor(CellTech::kQlc, endurance, 400, 2.0, 50);
  const double exact = ComputeRber(ErrorModelKind::kVoltage, state, 7);
  const double got = memo.Rber(state, 7);
  EXPECT_LE(std::abs(got - exact), RberCache::kRelErrorBound * exact + RberCache::kAbsErrorBound);
  EXPECT_EQ(got, memo.Rber(state, 3));  // same saturated table
}

TEST(RberMemoTest, HotPathSwitchesDefaultOff) {
  // The determinism contract: every golden was produced with these off, so
  // their defaults are load-bearing. Flipping one is a deliberate,
  // golden-regenerating decision -- never a drive-by.
  EXPECT_FALSE(NandConfig{}.rber_memo);
  EXPECT_FALSE(FtlConfig{}.batched_relocation);
  EXPECT_FALSE(SosDeviceConfig{}.batched_relocation);
}

}  // namespace
}  // namespace sos
