// Copyright (c) 2026 The SOS Authors. MIT License.
//
// ThreadPool / ParallelFor / ParallelMap: startup/shutdown, result and
// exception plumbing, range edge cases, and a small-job stress case meant
// to run under -DSOS_SANITIZE=thread.

#include "src/common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace sos {
namespace {

TEST(ThreadPoolTest, StartupAndShutdown) {
  for (size_t n : {1u, 2u, 4u}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.size(), n);
  }
  // Destruction with queued-but-unwaited work must still drain cleanly.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
  ThreadPool pool(0);  // 0 = hardware concurrency
  EXPECT_EQ(pool.size(), ThreadPool::DefaultThreads());
}

TEST(ThreadPoolTest, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  std::future<int> a = pool.Submit([] { return 7; });
  std::future<std::string> b = pool.Submit([] { return std::string("sos"); });
  EXPECT_EQ(a.get(), 7);
  EXPECT_EQ(b.get(), "sos");
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(1);
  std::future<int> f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives a throwing job.
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

// Shutdown ordering regression: submitting to a pool that has been shut down
// must fail loudly (broken_promise) instead of deadlocking on a future whose
// job no worker will ever run. Shutdown itself must be idempotent and still
// run everything queued before it.
TEST(ThreadPoolTest, SubmitAfterShutdownReturnsErrorNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    (void)pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 16);  // queued work drained before the join
  EXPECT_EQ(pool.size(), 0u);

  std::future<int> late = pool.Submit([] { return 3; });
  ASSERT_TRUE(late.valid());
  try {
    (void)late.get();  // must throw, not block
    FAIL() << "expected broken_promise from a post-shutdown Submit";
  } catch (const std::future_error& e) {
    EXPECT_EQ(e.code(), std::make_error_code(std::future_errc::broken_promise));
  }

  pool.Shutdown();  // idempotent
  EXPECT_EQ(pool.size(), 0u);
}

TEST(ParallelForTest, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelFor(pool, 0, 0, [&calls](size_t) { calls.fetch_add(1); });
  ParallelFor(pool, 5, 5, [&calls](size_t) { calls.fetch_add(1); });
  ParallelFor(pool, 7, 3, [&calls](size_t) { calls.fetch_add(1); });  // inverted
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleElementRange) {
  ThreadPool pool(3);
  std::atomic<size_t> seen{0};
  ParallelFor(pool, 41, 42, [&seen](size_t i) { seen.store(i); });
  EXPECT_EQ(seen.load(), 41u);
}

TEST(ParallelForTest, OddSizedRangeCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1237;  // prime, deliberately not a multiple of workers
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(pool, 0, kN, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    ParallelFor(pool, 0, 100, [&completed](size_t i) {
      if (i == 17 || i == 63) {
        throw std::runtime_error("job " + std::to_string(i));
      }
      completed.fetch_add(1);
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 17");  // lowest failing index wins
  }
  // Every non-throwing job still ran (the loop drains before rethrowing).
  EXPECT_EQ(completed.load(), 98);
}

TEST(ParallelMapTest, ResultsLandInIndexOrder) {
  ThreadPool pool(4);
  const std::vector<size_t> out = ParallelMap(pool, 257, [](size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

// Many tiny jobs across several threads: the case ThreadSanitizer watches.
// Shared state is a single atomic; everything else is per-job.
TEST(ThreadPoolStressTest, ManySmallJobs) {
  ThreadPool pool(4);
  constexpr int kJobs = 20000;
  std::atomic<int64_t> sum{0};
  ParallelFor(pool, 0, kJobs, [&sum](size_t i) {
    sum.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<int64_t>(kJobs) * (kJobs - 1) / 2);
}

TEST(ThreadPoolStressTest, RepeatedPoolLifecycles) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3);
    std::atomic<int> count{0};
    ParallelFor(pool, 0, 50, [&count](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
  }
}

}  // namespace
}  // namespace sos
