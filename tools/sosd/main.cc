// Copyright (c) 2026 The SOS Authors. MIT License.
//
// sosd: serves one simulated SosDevice over a unix-domain socket, speaking
// the length-prefixed block protocol of src/serve/wire.h.
//
//   sosd --socket=/tmp/sosd.sock [--blocks=N --wordlines=N --page-size=N]
//        [--seed=N] [--workers=N] [--depth=N] [--qos=on|off]
//
// Each connection gets its own service thread; all connections share the
// device through AsyncBlockService's gate, so concurrent clients see one
// consistent block space. SIGINT/SIGTERM stop the accept loop, drain
// in-flight requests, and remove the socket file. Stats go to stderr on
// exit (sim-time numbers; nothing here prints to stdout).

#include <csignal>
#include <cstdio>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/common/sim_clock.h"
#include "src/serve/server.h"
#include "src/serve/service.h"
#include "src/sos/sos_device.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleStopSignal(int /*signum*/) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  sos::FlagSet flags("sosd", "block-service daemon over a simulated SOS device");
  std::string* socket_path = flags.Path("socket", "unix socket path to listen on (required)");
  size_t* blocks = flags.Size("blocks", 512, "physical NAND blocks");
  size_t* wordlines = flags.Size("wordlines", 64, "wordlines per block");
  size_t* page_size = flags.Size("page-size", 4096, "page size in bytes");
  uint64_t* seed = flags.U64("seed", 1, "device RNG seed");
  size_t* workers = flags.Size("workers", 4, "service worker threads (>= 1)");
  size_t* depth = flags.Size("depth", 256, "submission queue depth");
  std::string* qos = flags.Enum("qos", "on", {"on", "off"}, "weighted per-class scheduling");
  flags.ParseOrDie(argc, argv);

  if (socket_path->empty()) {
    std::fprintf(stderr, "sosd: --socket is required\n%s", flags.Usage().c_str());
    return 2;
  }
  sockaddr_un addr{};
  if (socket_path->size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "sosd: socket path too long (max %zu bytes)\n",
                 sizeof(addr.sun_path) - 1);
    return 2;
  }

  sos::SimClock clock;
  sos::SosDeviceConfig config;
  config.nand.num_blocks = static_cast<uint32_t>(*blocks);
  config.nand.wordlines_per_block = static_cast<uint32_t>(*wordlines);
  config.nand.page_size_bytes = static_cast<uint32_t>(*page_size);
  config.nand.seed = *seed;
  sos::SosDevice device(config, &clock);

  sos::serve::ServeConfig serve_config;
  serve_config.workers = *workers == 0 ? 1 : *workers;  // a daemon must dispatch itself
  serve_config.submission_depth = *depth;
  serve_config.qos = *qos == "on";
  sos::serve::AsyncBlockService service(&device, &clock, serve_config);
  sos::serve::SosdServer server(&service);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("sosd: socket");
    return 1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path->c_str(), socket_path->size() + 1);
  ::unlink(socket_path->c_str());  // stale socket from a previous run
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    std::perror("sosd: bind/listen");
    ::close(listen_fd);
    return 1;
  }

  struct sigaction action{};
  action.sa_handler = HandleStopSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  std::fprintf(stderr, "[sosd] listening on %s (%zu workers, qos=%s, depth=%zu)\n",
               socket_path->c_str(), serve_config.workers, qos->c_str(), *depth);
  server.ServeListener(listen_fd, g_stop);

  ::close(listen_fd);
  ::unlink(socket_path->c_str());
  service.Shutdown();
  const sos::serve::ServeStats stats = service.Stats();
  std::fprintf(stderr,
               "[sosd] served %llu requests in %llu batches (%llu coalesced), sim time %llu us\n",
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.batches),
               static_cast<unsigned long long>(stats.coalesced),
               static_cast<unsigned long long>(clock.now()));
  return 0;
}
