// Copyright (c) 2026 The SOS Authors. MIT License.

#include "tools/soslint/soslint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_set>
#include <vector>

namespace sos::lint {
namespace {

// ---------------------------------------------------------------------------
// Lexer: comments and string literals are stripped from the token stream
// (comments are kept separately so allow-directives can be parsed), multi-char
// operators are lexed as single tokens so "==" never reads as two "=".
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Comment {
  int line;  // line the comment starts on
  std::string text;
};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Longest-match puncts that matter for the rules (assignment vs comparison,
// template closers, stream output). Everything else falls through as 1 char.
constexpr std::array<const char*, 24> kMultiPunct = {
    "<<=", ">>=", "...", "->*", "->", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>",  "++",  "--",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=", "::",
};

struct Lexed {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

bool IsRawStringPrefix(const std::string& ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" || ident == "LR";
}

Lexed Lex(const std::string& src) {
  Lexed out;
  const size_t n = src.size();
  size_t i = 0;
  int line = 1;
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const size_t start = i;
      while (i < n && src[i] != '\n') {
        ++i;
      }
      out.comments.push_back({line, src.substr(start, i - start)});
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      const size_t start = i;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          ++line;
        }
        ++i;
      }
      i = i + 1 < n ? i + 2 : n;
      out.comments.push_back({start_line, src.substr(start, i - start)});
      continue;
    }
    // String literal (raw strings are handled from the identifier path below,
    // since the R prefix lexes as an identifier first).
    if (c == '"') {
      const size_t start = ++i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < n) {
          ++i;
        }
        if (src[i] == '\n') {
          ++line;  // unterminated string; keep line counts sane
        }
        ++i;
      }
      out.tokens.push_back({TokKind::kString, src.substr(start, i - start), line});
      i = i < n ? i + 1 : n;
      continue;
    }
    if (c == '\'') {
      ++i;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) {
          ++i;
        }
        ++i;
      }
      i = i < n ? i + 1 : n;
      continue;  // char literals carry no lint signal
    }
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(src[i])) {
        ++i;
      }
      std::string ident = src.substr(start, i - start);
      // Raw string literal: R"delim( ... )delim"
      if (i < n && src[i] == '"' && IsRawStringPrefix(ident)) {
        ++i;
        std::string delim;
        while (i < n && src[i] != '(') {
          delim += src[i++];
        }
        const std::string closer = ")" + delim + "\"";
        const size_t body_start = i < n ? i + 1 : n;
        const size_t end = src.find(closer, body_start);
        const size_t body_end = end == std::string::npos ? n : end;
        for (size_t k = body_start; k < body_end; ++k) {
          if (src[k] == '\n') {
            ++line;
          }
        }
        out.tokens.push_back({TokKind::kString, "", line});
        i = end == std::string::npos ? n : end + closer.size();
        continue;
      }
      out.tokens.push_back({TokKind::kIdent, std::move(ident), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const size_t start = i;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.' || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
                         src[i - 1] == 'P')))) {
        ++i;
      }
      out.tokens.push_back({TokKind::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // Punctuation: longest multi-char operator first.
    bool matched = false;
    for (const char* op : kMultiPunct) {
      const size_t len = std::char_traits<char>::length(op);
      if (src.compare(i, len, op) == 0) {
        out.tokens.push_back({TokKind::kPunct, op, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Allow-directives (rule R5).
// ---------------------------------------------------------------------------

constexpr std::array<const char*, 10> kRules = {"R1", "R2", "R3", "R4", "R5",
                                               "R6", "R7", "R8", "R9", "R10"};

bool IsKnownRule(const std::string& rule) {
  return std::find(kRules.begin(), kRules.end(), rule) != kRules.end();
}

struct AllowTable {
  // line -> rules allowed on that line and the next.
  std::map<int, std::set<std::string>> by_line;
  std::vector<Diagnostic> malformed;
};

AllowTable ParseAllows(const std::string& path, const std::vector<Comment>& comments) {
  AllowTable table;
  constexpr const char* kKey = "soslint:allow";
  for (const Comment& comment : comments) {
    size_t pos = 0;
    while ((pos = comment.text.find(kKey, pos)) != std::string::npos) {
      pos += std::char_traits<char>::length(kKey);
      const size_t open = comment.text.find_first_not_of(' ', pos);
      if (open == std::string::npos || comment.text[open] != '(') {
        table.malformed.push_back({path, comment.line, "R5",
                                   "malformed soslint:allow -- expected soslint:allow(<rule>) "
                                   "<reason>"});
        continue;
      }
      const size_t close = comment.text.find(')', open);
      if (close == std::string::npos) {
        table.malformed.push_back({path, comment.line, "R5",
                                   "malformed soslint:allow -- missing ')'"});
        continue;
      }
      const std::string rule = comment.text.substr(open + 1, close - open - 1);
      if (!IsKnownRule(rule)) {
        table.malformed.push_back({path, comment.line, "R5",
                                   "soslint:allow names unknown rule '" + rule + "'"});
        continue;
      }
      const size_t reason = comment.text.find_first_not_of(" \t", close + 1);
      if (reason == std::string::npos) {
        table.malformed.push_back({path, comment.line, "R5",
                                   "soslint:allow(" + rule +
                                       ") has no reason -- justify the suppression"});
        continue;
      }
      table.by_line[comment.line].insert(rule);
    }
  }
  return table;
}

bool IsAllowed(const AllowTable& table, int line, const std::string& rule) {
  for (const int l : {line, line - 1}) {
    auto it = table.by_line.find(l);
    if (it != table.by_line.end() && it->second.count(rule) > 0) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Small token-stream helpers.
// ---------------------------------------------------------------------------

// Index of the token matching the opener at `open_index` ('(' / '{' / '['),
// or tokens.size() when unbalanced.
size_t MatchingClose(const std::vector<Token>& tokens, size_t open_index) {
  const std::string& open = tokens[open_index].text;
  const std::string close = open == "(" ? ")" : open == "{" ? "}" : "]";
  int depth = 0;
  for (size_t i = open_index; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct) {
      continue;
    }
    if (tokens[i].text == open) {
      ++depth;
    } else if (tokens[i].text == close) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return tokens.size();
}

// After tokens[i] == "unordered_map"/"unordered_set"/"Result", skips the
// template argument list (handling ">>" closing two levels) and returns the
// index of the first token past it.
size_t SkipTemplateArgs(const std::vector<Token>& tokens, size_t i) {
  size_t j = i + 1;
  if (j >= tokens.size() || tokens[j].text != "<") {
    return j;
  }
  int depth = 0;
  for (; j < tokens.size(); ++j) {
    if (tokens[j].kind != TokKind::kPunct) {
      continue;
    }
    if (tokens[j].text == "<") {
      ++depth;
    } else if (tokens[j].text == "<<") {
      depth += 2;
    } else if (tokens[j].text == ">") {
      if (--depth == 0) {
        return j + 1;
      }
    } else if (tokens[j].text == ">>") {
      depth -= 2;
      if (depth <= 0) {
        return j + 1;
      }
    }
  }
  return j;
}

// For every token, the index of the '}' closing the innermost '{' scope it
// sits in (tokens.size() at file scope or in unbalanced code). This is the
// whole intra-procedural flow pass the Status rules need: "does variable X
// get read again before its scope closes" is a scan to scope_close[i].
std::vector<size_t> BuildScopeClose(const std::vector<Token>& tokens) {
  std::vector<size_t> close_of(tokens.size(), tokens.size());
  std::vector<size_t> stack;
  // First pass: match braces.
  std::vector<size_t> open_match(tokens.size(), tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct) {
      continue;
    }
    if (tokens[i].text == "{") {
      stack.push_back(i);
    } else if (tokens[i].text == "}" && !stack.empty()) {
      open_match[stack.back()] = i;
      stack.pop_back();
    }
  }
  // Second pass: annotate every token with its innermost enclosing close.
  stack.clear();
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind == TokKind::kPunct && tokens[i].text == "{") {
      stack.push_back(i);
    }
    close_of[i] = stack.empty() ? tokens.size() : open_match[stack.back()];
    if (tokens[i].kind == TokKind::kPunct && tokens[i].text == "}" && !stack.empty()) {
      stack.pop_back();
      close_of[i] = stack.empty() ? tokens.size() : open_match[stack.back()];
    }
  }
  return close_of;
}

bool IsUpper(const std::string& s) {
  return !s.empty() && std::isupper(static_cast<unsigned char>(s[0])) != 0;
}

// ---------------------------------------------------------------------------
// R1: iteration over unordered containers.
// ---------------------------------------------------------------------------

const std::unordered_set<std::string>& SinkIdents() {
  static const std::unordered_set<std::string> kSinks = {
      "printf", "fprintf", "snprintf", "cout",  "cerr",        "AddRow",
      "Print",  "PrintTo", "push_back", "emplace_back", "append",
  };
  return kSinks;
}

void CheckUnorderedIteration(const SourceFile& file, const std::vector<Token>& tokens,
                             const std::set<std::string>& unordered_names,
                             std::vector<Diagnostic>* diags) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent || tokens[i].text != "for") {
      continue;
    }
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") {
      continue;
    }
    const size_t close = MatchingClose(tokens, i + 1);
    if (close >= tokens.size()) {
      continue;
    }
    // Range-for: a ':' at paren depth 1 (the lexer emits '::' as one token,
    // so scope resolution cannot masquerade as the range separator).
    size_t colon = tokens.size();
    int depth = 0;
    for (size_t j = i + 1; j < close; ++j) {
      if (tokens[j].kind != TokKind::kPunct) {
        continue;
      }
      if (tokens[j].text == "(" || tokens[j].text == "[" || tokens[j].text == "{") {
        ++depth;
      } else if (tokens[j].text == ")" || tokens[j].text == "]" || tokens[j].text == "}") {
        --depth;
      } else if (tokens[j].text == ":" && depth == 1) {
        colon = j;
        break;
      }
    }
    if (colon == tokens.size()) {
      continue;  // classic for loop
    }
    if (colon + 1 < close && tokens[colon + 1].text == "{") {
      continue;  // braced init list: written order, deterministic
    }
    // Does the range expression name a known-unordered container? Wrapping
    // the container in the sanctioned sort helpers yields ordered keys, so
    // those loops are safe by construction.
    std::string container;
    bool sorted_wrapper = false;
    for (size_t j = colon + 1; j < close; ++j) {
      if (tokens[j].kind == TokKind::kIdent &&
          (tokens[j].text == "SortedKeys" || tokens[j].text == "SortedElements")) {
        sorted_wrapper = true;
        break;
      }
      if (tokens[j].kind == TokKind::kIdent &&
          (unordered_names.count(tokens[j].text) > 0 || tokens[j].text == "unordered_map" ||
           tokens[j].text == "unordered_set")) {
        container = tokens[j].text;
        break;
      }
    }
    if (sorted_wrapper || container.empty()) {
      continue;
    }
    // Enrich the message with any ordered-output sink in the loop body.
    std::string sinks;
    if (close + 1 < tokens.size() && tokens[close + 1].text == "{") {
      const size_t body_end = MatchingClose(tokens, close + 1);
      for (size_t j = close + 2; j < body_end && j < tokens.size(); ++j) {
        const bool is_sink =
            (tokens[j].kind == TokKind::kIdent && SinkIdents().count(tokens[j].text) > 0) ||
            (tokens[j].kind == TokKind::kPunct && tokens[j].text == "<<");
        if (is_sink && sinks.find(tokens[j].text) == std::string::npos) {
          sinks += sinks.empty() ? tokens[j].text : ", " + tokens[j].text;
        }
      }
    }
    std::string message = "iteration over unordered container '" + container + "'";
    if (!sinks.empty()) {
      message += " whose body feeds ordered output (" + sinks + ")";
    }
    message +=
        "; hash order is not portable across standard libraries -- iterate "
        "sorted keys (see SortedKeys in src/common/container_util.h) or "
        "justify with soslint:allow(R1) <reason>";
    diags->push_back({file.path, tokens[i].line, "R1", std::move(message)});
  }
}

// ---------------------------------------------------------------------------
// R2: ambient randomness / wall-clock time.
// ---------------------------------------------------------------------------

bool IsR2Exempt(const std::string& path) {
  return path == "src/common/rng.h" || path == "src/common/rng.cc" ||
         path == "src/common/sim_clock.h";
}

void CheckBannedEntropy(const SourceFile& file, const std::vector<Token>& tokens,
                        std::vector<Diagnostic>* diags) {
  if (IsR2Exempt(file.path)) {
    return;
  }
  static const std::unordered_set<std::string> kBanned = {
      "rand",         "srand",        "drand48",      "lrand48",
      "random_device", "system_clock", "gettimeofday", "clock_gettime",
      "localtime",    "gmtime",       "mt19937",      "mt19937_64",
      "default_random_engine",
  };
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent) {
      continue;
    }
    const std::string& t = tokens[i].text;
    const bool banned =
        kBanned.count(t) > 0 ||
        // `time` only as an explicit call through `::`/`std::`; a bare `time`
        // identifier is too common to ban outright.
        (t == "time" && i > 0 && tokens[i - 1].text == "::");
    if (banned) {
      diags->push_back({file.path, tokens[i].line, "R2",
                        "'" + t +
                            "' is a nondeterminism source; all entropy must come from "
                            "src/common/rng.h (DeriveSeed) and all time from SimClock"});
    }
  }
}

// ---------------------------------------------------------------------------
// R3: include style + header guards.
// ---------------------------------------------------------------------------

std::string ExpectedGuard(const std::string& path) {
  std::string guard = "SOS_";
  for (const char c : path) {
    if (c == '/' || c == '.') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

void CheckIncludes(const SourceFile& file, const std::vector<Token>& tokens,
                   std::vector<Diagnostic>* diags) {
  static const std::array<const char*, 5> kPrefixes = {"src/", "tests/", "bench/", "tools/",
                                                       "examples/"};
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].text != "#" || tokens[i + 1].text != "include" ||
        tokens[i + 2].kind != TokKind::kString) {
      continue;
    }
    const std::string& inc = tokens[i + 2].text;
    const bool ok = std::any_of(kPrefixes.begin(), kPrefixes.end(), [&inc](const char* p) {
      return inc.rfind(p, 0) == 0;
    });
    if (!ok) {
      diags->push_back({file.path, tokens[i].line, "R3",
                        "#include \"" + inc +
                            "\" must use the full repository path (e.g. "
                            "#include \"src/common/status.h\")"});
    }
  }
}

void CheckHeaderGuard(const SourceFile& file, const std::vector<Token>& tokens,
                      std::vector<Diagnostic>* diags) {
  if (file.path.size() < 2 || file.path.compare(file.path.size() - 2, 2, ".h") != 0) {
    return;
  }
  const std::string expected = ExpectedGuard(file.path);
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].text != "#") {
      continue;
    }
    if (tokens[i + 1].text == "pragma") {
      diags->push_back({file.path, tokens[i].line, "R3",
                        "use an include guard named " + expected + ", not #pragma once"});
      return;
    }
    if (tokens[i + 1].text == "ifndef") {
      if (i + 2 >= tokens.size() || tokens[i + 2].text != expected) {
        const std::string got = i + 2 < tokens.size() ? tokens[i + 2].text : "<missing>";
        diags->push_back({file.path, tokens[i].line, "R3",
                          "header guard '" + got + "' should be '" + expected + "'"});
      }
      return;
    }
  }
  diags->push_back({file.path, 1, "R3", "missing include guard " + expected});
}

// ---------------------------------------------------------------------------
// R4: assert with side effects.
// ---------------------------------------------------------------------------

void CheckAssertSideEffects(const SourceFile& file, const std::vector<Token>& tokens,
                            std::vector<Diagnostic>* diags) {
  static const std::unordered_set<std::string> kMutating = {
      "=",  "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
  };
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent || tokens[i].text != "assert" ||
        tokens[i + 1].text != "(") {
      continue;
    }
    const size_t close = MatchingClose(tokens, i + 1);
    for (size_t j = i + 2; j < close && j < tokens.size(); ++j) {
      if (tokens[j].kind == TokKind::kPunct && kMutating.count(tokens[j].text) > 0) {
        diags->push_back({file.path, tokens[i].line, "R4",
                          "assert() argument contains '" + tokens[j].text +
                              "'; side effects inside assert change behavior under NDEBUG"});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Call-site classification shared by R6 and R7: given an indexed fallible
// call `recv.chain->Name(...)`, decide whether its result reaches a sink.
// ---------------------------------------------------------------------------

enum class CallUse {
  kUsed,      // returned / argument / condition / member access on the result
  kBare,      // expression statement, result dropped on the floor
  kVoidCast,  // (void)-laundered
  kAssigned,  // bound to a variable -- flow pass decides if it's ever read
};

struct CallSite {
  CallUse use = CallUse::kUsed;
  size_t head = 0;           // index of the first token of the full call expression
  std::string assigned_to;   // for kAssigned: the variable name
};

CallSite ClassifyCall(const std::vector<Token>& tokens, size_t name_index) {
  CallSite site;
  // Walk back over the receiver chain (`ftl_->`, `device.ftl().`) to the
  // statement head; what precedes it decides whether the result is used.
  size_t k = name_index;
  while (k > 0) {
    const std::string& prev = tokens[k - 1].text;
    if (prev == "." || prev == "->" || prev == "::") {
      k -= 1;
      if (k > 0) {
        --k;  // the receiver token itself (identifier, ')' or ']')
      }
      continue;
    }
    break;
  }
  site.head = k;
  if (k == 0) {
    site.use = CallUse::kBare;
    return site;
  }
  const Token& prev = tokens[k - 1];
  if (prev.text == ";" || prev.text == "{" || prev.text == "}" || prev.text == "else") {
    site.use = CallUse::kBare;
    return site;
  }
  if (k >= 3 && prev.text == ")" && tokens[k - 2].text == "void" && tokens[k - 3].text == "(") {
    site.use = CallUse::kVoidCast;
    return site;
  }
  if (prev.text == "=" && k >= 2 && tokens[k - 2].kind == TokKind::kIdent) {
    // Only a declaration (`Status s = F();` -- the variable name preceded by
    // a type) gets the assigned-never-read scan. A plain reassignment
    // (`s = F();`, the retry idiom) writes a variable declared in a scope
    // this pass cannot see, so it is conservatively treated as used.
    const bool is_decl =
        k >= 3 && (tokens[k - 3].kind == TokKind::kIdent || tokens[k - 3].text == ">" ||
                   tokens[k - 3].text == ">>" || tokens[k - 3].text == "*" ||
                   tokens[k - 3].text == "&");
    if (is_decl) {
      site.use = CallUse::kAssigned;
      site.assigned_to = tokens[k - 2].text;
    }
    return site;
  }
  return site;
}

// For kAssigned: does `var` get read again between the end of the assigning
// statement and the close of its scope? A (void)-cast of the variable is
// laundering, not a read.
bool VariableReadLater(const std::vector<Token>& tokens, const std::vector<size_t>& scope_close,
                       size_t call_index, const std::string& var) {
  // End of the assigning statement: first ';' at or after the call.
  size_t stmt_end = call_index;
  while (stmt_end < tokens.size() && tokens[stmt_end].text != ";") {
    ++stmt_end;
  }
  const size_t end = scope_close[call_index];
  for (size_t j = stmt_end + 1; j < end && j < tokens.size(); ++j) {
    if (tokens[j].kind != TokKind::kIdent || tokens[j].text != var) {
      continue;
    }
    const bool void_cast = j >= 3 && tokens[j - 1].text == ")" && tokens[j - 2].text == "void" &&
                           tokens[j - 3].text == "(";
    if (!void_cast) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// R6: swallowed Status/Result on recovery and fault-injection paths.
// ---------------------------------------------------------------------------
//
// [[nodiscard]] already rejects a plain discard at compile time; what it
// cannot catch is `(void)`-laundering or a refactor that drops the marker.
// On crash-recovery code a swallowed error is exactly the bug the subsystem
// exists to surface, so the recovery entry points get a dedicated lint:
// their Status must be assigned, tested, returned, or explicitly waived
// through IgnoreResult() (which is grep-able and reviewed). R7 generalizes
// this to every fallible function in the tree; R6 stays as the strict,
// unconditional rule for the recovery entry points themselves, now over the
// whole scan scope (a bench driver swallowing RecoverFromPowerLoss is no
// more acceptable than the FTL doing it).

bool IsR6Callee(const std::string& name) {
  return name.rfind("Recover", 0) == 0 || name == "DropBadBlock" || name == "GateOp";
}

void CheckSwallowedRecoveryStatus(const SourceFile& file, const std::vector<Token>& tokens,
                                  std::vector<Diagnostic>* diags) {
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent || !IsR6Callee(tokens[i].text) ||
        tokens[i + 1].text != "(") {
      continue;
    }
    const CallSite site = ClassifyCall(tokens, i);
    if (site.use == CallUse::kBare || site.use == CallUse::kVoidCast) {
      diags->push_back(
          {file.path, tokens[i].line, "R6",
           std::string(site.use == CallUse::kVoidCast ? "(void)-casting" : "discarding") +
               " the Status of '" + tokens[i].text +
               "' swallows a recovery/fault-path error; handle it, propagate it, or waive it "
               "explicitly with IgnoreResult(...)"});
    }
  }
}

// ---------------------------------------------------------------------------
// R7: cross-TU Status propagation.
// ---------------------------------------------------------------------------

void CheckStatusFlow(const SourceFile& file, const std::vector<Token>& tokens,
                     const std::vector<size_t>& scope_close, const SymbolIndex& index,
                     std::vector<Diagnostic>* diags) {
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent || tokens[i + 1].text != "(") {
      continue;
    }
    const auto it = index.fallible_fns.find(tokens[i].text);
    if (it == index.fallible_fns.end()) {
      continue;
    }
    if (IsR6Callee(tokens[i].text)) {
      continue;  // R6 owns the recovery entry points with its stricter message
    }
    const CallSite site = ClassifyCall(tokens, i);
    const std::string origin = it->second.file + ":" + std::to_string(it->second.line);
    if (site.use == CallUse::kBare || site.use == CallUse::kVoidCast) {
      diags->push_back(
          {file.path, tokens[i].line, "R7",
           std::string(site.use == CallUse::kVoidCast ? "(void)-casting" : "discarding") +
               " the " + it->second.return_type + " of '" + tokens[i].text + "' (declared at " +
               origin +
               "); the result of a fallible call must reach a sink -- return it, check it, or "
               "waive it with IgnoreResult(...)"});
    } else if (site.use == CallUse::kAssigned &&
               !VariableReadLater(tokens, scope_close, i, site.assigned_to)) {
      diags->push_back({file.path, tokens[i].line, "R7",
                        "the " + it->second.return_type + " of '" + tokens[i].text +
                            "' (declared at " + origin + ") is assigned to '" +
                            site.assigned_to +
                            "' which is never read afterwards; check it or drop it explicitly "
                            "with IgnoreResult(...)"});
    }
  }
}

// ---------------------------------------------------------------------------
// R8: shared-mutable captures in thread-pool lambdas.
// ---------------------------------------------------------------------------

bool IsPoolEntryPoint(const std::string& name) {
  return name == "Submit" || name == "ParallelFor" || name == "ParallelMap";
}

const std::unordered_set<std::string>& MutatingMethods() {
  static const std::unordered_set<std::string> kMethods = {
      "push_back", "emplace_back", "insert", "emplace", "erase",  "clear",
      "resize",    "append",       "assign", "Add",     "Set",    "Observe",
      "Record",    "Append",       "Increment",
      // Queue verbs: a bare struct's Push/Pop from a pool lambda is exactly
      // the race R8 exists for. Writes through an identifier of an
      // internally synchronized type (see SymbolIndex::sync_idents) are
      // exempted at the check site instead.
      "Push", "Pop", "TryPush", "TryPop", "Enqueue", "Dequeue",
  };
  return kMethods;
}

const std::unordered_set<std::string>& LockIdents() {
  static const std::unordered_set<std::string> kLocks = {
      "lock_guard", "unique_lock", "scoped_lock", "atomic", "mutex", "Mutex",
  };
  return kLocks;
}

bool IsAssignOp(const std::string& t) {
  static const std::unordered_set<std::string> kOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
  };
  return kOps.count(t) > 0;
}

void CheckThreadPoolCaptures(const SourceFile& file, const std::vector<Token>& tokens,
                             const SymbolIndex& index, std::vector<Diagnostic>* diags) {
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent || !IsPoolEntryPoint(tokens[i].text) ||
        tokens[i + 1].text != "(") {
      continue;
    }
    const size_t args_close = MatchingClose(tokens, i + 1);
    // Find lambdas among the arguments: '[' introducing a capture list.
    for (size_t j = i + 2; j < args_close && j < tokens.size(); ++j) {
      if (tokens[j].text != "[" ||
          (tokens[j - 1].text != "(" && tokens[j - 1].text != ",")) {
        continue;
      }
      const size_t cap_close = MatchingClose(tokens, j);
      if (cap_close >= tokens.size()) {
        continue;
      }
      // Parse the capture list.
      bool default_ref = false;
      std::set<std::string> ref_captures;
      for (size_t k = j + 1; k < cap_close; ++k) {
        if (tokens[k].text != "&") {
          continue;
        }
        if (k + 1 < cap_close && tokens[k + 1].kind == TokKind::kIdent) {
          ref_captures.insert(tokens[k + 1].text);
        } else {
          default_ref = true;
        }
      }
      if (!default_ref && ref_captures.empty()) {
        j = cap_close;
        continue;  // by-value lambda cannot share mutable state
      }
      // Parameters (every identifier in the parameter list counts; the last
      // one of each declarator is the name, the rest are types -- treating
      // types as parameter names only ever widens the per-index exemption).
      std::set<std::string> params;
      size_t body_open = cap_close + 1;
      if (body_open < tokens.size() && tokens[body_open].text == "(") {
        const size_t params_close = MatchingClose(tokens, body_open);
        for (size_t k = body_open + 1; k < params_close; ++k) {
          if (tokens[k].kind == TokKind::kIdent) {
            params.insert(tokens[k].text);
          }
        }
        body_open = params_close + 1;
      }
      while (body_open < tokens.size() && tokens[body_open].text != "{" &&
             tokens[body_open].text != ";") {
        ++body_open;  // skip mutable / noexcept / -> ReturnType
      }
      if (body_open >= tokens.size() || tokens[body_open].text != "{") {
        continue;
      }
      const size_t body_close = MatchingClose(tokens, body_open);
      // A lock or atomic in the body is the sanctioned synchronization.
      bool synchronized = false;
      for (size_t k = body_open; k < body_close && k < tokens.size(); ++k) {
        if (tokens[k].kind == TokKind::kIdent && LockIdents().count(tokens[k].text) > 0) {
          synchronized = true;
          break;
        }
      }
      if (synchronized) {
        j = cap_close;
        continue;
      }
      // Scan the body for writes through captured names.
      std::set<std::string> flagged;
      for (size_t k = body_open + 1; k < body_close && k < tokens.size(); ++k) {
        if (tokens[k].kind != TokKind::kIdent) {
          continue;
        }
        const std::string& name = tokens[k].text;
        if (params.count(name) > 0 || flagged.count(name) > 0) {
          continue;
        }
        const bool captured = ref_captures.count(name) > 0 || default_ref;
        if (!captured) {
          continue;
        }
        const Token& next = tokens[k + 1];
        bool write = false;
        bool slot_write = false;
        if (next.kind == TokKind::kPunct && (IsAssignOp(next.text) || next.text == "++" ||
                                             next.text == "--")) {
          write = true;
        } else if (k > 0 && tokens[k - 1].kind == TokKind::kPunct &&
                   (tokens[k - 1].text == "++" || tokens[k - 1].text == "--")) {
          write = true;
        } else if (next.text == "[") {
          const size_t idx_close = MatchingClose(tokens, k + 1);
          if (idx_close + 1 < tokens.size() && IsAssignOp(tokens[idx_close + 1].text)) {
            write = true;
            for (size_t m = k + 2; m < idx_close; ++m) {
              if (tokens[m].kind == TokKind::kIdent && params.count(tokens[m].text) > 0) {
                slot_write = true;  // out[i] = ...: the ParallelMap contract
                break;
              }
            }
          }
        } else if ((next.text == "." || next.text == "->") && k + 3 < tokens.size() &&
                   tokens[k + 2].kind == TokKind::kIdent &&
                   MutatingMethods().count(tokens[k + 2].text) > 0 &&
                   tokens[k + 3].text == "(") {
          // The completion-queue hand-off idiom: a mutating call through an
          // identifier declared (anywhere in the tree) with an internally
          // synchronized type -- a class carrying its own mutex/cv/atomic --
          // is the sanctioned cross-thread channel, not a race.
          write = index.sync_idents.count(name) == 0;
        }
        if (write && !slot_write && default_ref && ref_captures.count(name) == 0) {
          // Under [&] we cannot see the capture set; only treat the name as
          // shared if it also appears outside the lambda in this file.
          bool outside = false;
          for (size_t m = 0; m < tokens.size(); ++m) {
            if (m >= j && m <= body_close) {
              m = body_close;
              continue;
            }
            if (tokens[m].kind == TokKind::kIdent && tokens[m].text == name) {
              outside = true;
              break;
            }
          }
          if (!outside) {
            continue;
          }
        }
        if (write && !slot_write) {
          flagged.insert(name);
          diags->push_back(
              {file.path, tokens[k].line, "R8",
               "thread-pool lambda writes shared by-reference capture '" + name +
                   "' without a per-index slot or a lock; this is a data race the bench "
                   "drivers never run under TSan -- use a per-index slot (out[i] = ...), "
                   "synchronize, or justify with soslint:allow(R8) <reason>"});
        }
      }
      j = cap_close;
    }
  }
}

// ---------------------------------------------------------------------------
// R9: golden-output float stability.
// ---------------------------------------------------------------------------

bool IsR9Exempt(const std::string& path) {
  // gtest assertion messages are not golden bytes; everything else that
  // renders text is in scope.
  return path.rfind("tests/", 0) == 0;
}

const std::unordered_set<std::string>& SanctionedFormatters() {
  static const std::unordered_set<std::string> kFormatters = {
      "FormatDouble", "FormatPercent", "FormatBytes", "FormatCount", "FormatJsonDouble",
      "snprintf",     "printf",        "fprintf",
  };
  return kFormatters;
}

bool IsFloatLiteral(const Token& tok) {
  if (tok.kind != TokKind::kNumber || tok.text.rfind("0x", 0) == 0 ||
      tok.text.rfind("0X", 0) == 0) {
    return false;
  }
  return tok.text.find('.') != std::string::npos || tok.text.find('e') != std::string::npos ||
         tok.text.find('E') != std::string::npos;
}

void CheckFloatFormatting(const SourceFile& file, const std::vector<Token>& tokens,
                          const SymbolIndex& index, std::vector<Diagnostic>* diags) {
  if (IsR9Exempt(file.path)) {
    return;
  }
  auto is_double_ident = [&index](const Token& tok) {
    return tok.kind == TokKind::kIdent && index.double_idents.count(tok.text) > 0;
  };
  for (size_t i = 0; i < tokens.size(); ++i) {
    // `<< double_expr`: a left shift cannot take a floating operand, so any
    // `<<` whose right-hand expression involves a known double is a stream
    // insertion of one.
    if (tokens[i].kind == TokKind::kPunct && tokens[i].text == "<<") {
      std::string offender;
      bool sanctioned = false;
      int depth = 0;
      for (size_t j = i + 1; j < tokens.size(); ++j) {
        const Token& tok = tokens[j];
        if (tok.kind == TokKind::kPunct) {
          if (tok.text == "(" || tok.text == "[" || tok.text == "{") {
            ++depth;
          } else if (tok.text == ")" || tok.text == "]" || tok.text == "}") {
            if (--depth < 0) {
              break;
            }
          } else if (depth == 0 && (tok.text == ";" || tok.text == "," || tok.text == "<<")) {
            break;
          }
          continue;
        }
        if (tok.kind == TokKind::kIdent && SanctionedFormatters().count(tok.text) > 0) {
          sanctioned = true;
          break;
        }
        if (offender.empty() && (is_double_ident(tok) || IsFloatLiteral(tok))) {
          offender = tok.text;
        }
      }
      if (!offender.empty() && !sanctioned) {
        diags->push_back(
            {file.path, tokens[i].line, "R9",
             "streaming double '" + offender +
                 "' through operator<<; locale and shortest-round-trip formatting move "
                 "golden bytes between toolchains -- use FormatDouble/FormatJsonDouble or "
                 "snprintf(\"%.*f\") instead"});
      }
      continue;
    }
    // std::to_string(double): %f-like, locale-dependent, and precision-fixed
    // at 6 -- never what a golden file wants.
    if (tokens[i].kind == TokKind::kIdent && tokens[i].text == "to_string" &&
        i + 1 < tokens.size() && tokens[i + 1].text == "(") {
      const size_t close = MatchingClose(tokens, i + 1);
      for (size_t j = i + 2; j < close && j < tokens.size(); ++j) {
        if (is_double_ident(tokens[j]) || IsFloatLiteral(tokens[j])) {
          diags->push_back(
              {file.path, tokens[i].line, "R9",
               "std::to_string on double '" + tokens[j].text +
                   "' is locale-dependent with fixed precision 6 -- use FormatDouble/"
                   "FormatJsonDouble or snprintf(\"%.*f\") instead"});
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R10: unit hygiene.
// ---------------------------------------------------------------------------

bool IsR10Exempt(const std::string& path) { return path == "src/common/units.h"; }

// Strips digit separators and integer/float suffixes: "1'048'576ull" ->
// "1048576", "1024.0" -> "1024".
std::string NormalizeNumber(const std::string& text) {
  std::string digits;
  for (const char c : text) {
    if (c == '\'') {
      continue;
    }
    digits += c;
  }
  while (!digits.empty() && std::isalpha(static_cast<unsigned char>(digits.back())) != 0) {
    digits.pop_back();
  }
  if (digits.size() > 2 && digits.compare(digits.size() - 2, 2, ".0") == 0) {
    digits.resize(digits.size() - 2);
  }
  return digits;
}

bool IsUnitMagnitude(const std::string& normalized) {
  static const std::unordered_set<std::string> kMagnitudes = {
      "1024",          "1048576",        "1073741824",    "1099511627776",
      "1000000",       "1000000000",     "1000000000000",
  };
  return kMagnitudes.count(normalized) > 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void CheckUnitHygiene(const SourceFile& file, const std::vector<Token>& tokens,
                      std::vector<Diagnostic>* diags) {
  if (IsR10Exempt(file.path)) {
    return;
  }
  static const std::unordered_set<std::string> kBinary = {"kKiB", "kMiB", "kGiB", "kTiB"};
  static const std::unordered_set<std::string> kDecimal = {"kKB", "kMB", "kGB",
                                                           "kTB", "kPB", "kEB"};
  static const std::unordered_set<std::string> kMicros = {"kUsPerMs", "kUsPerSecond",
                                                          "kUsPerMinute", "kUsPerHour"};
  static const std::unordered_set<std::string> kConverters = {
      "BytesToGiB", "BytesToMiB", "BytesToGB", "UsToDays",  "UsToYears",
      "DaysToUs",   "YearsToUs",  "kUsPerDay", "kUsPerYear",
      "AgeDays",  // src/classify/features.cc: UsToDays with a subtraction
  };
  // Expression-granular family mixing. Segments are delimited by ; { } and
  // ',' -- a comma separates parameters/arguments, each of which is its own
  // expression (a signature taking both an *_us and a *_days parameter is
  // fine; dividing one by the other is not).
  size_t stmt_start = 0;
  const Token* binary = nullptr;
  const Token* decimal = nullptr;
  const Token* micros = nullptr;
  const Token* days = nullptr;
  bool converter = false;
  auto flush = [&](size_t /*end*/) {
    if (!converter && binary != nullptr && decimal != nullptr) {
      diags->push_back(
          {file.path, binary->line, "R10",
           "one expression mixes binary '" + binary->text + "' and decimal '" + decimal->text +
               "' size units; convert explicitly through a units.h helper (BytesToGiB, "
               "BytesToGB, ...) or split the expression"});
    }
    if (!converter && micros != nullptr && days != nullptr) {
      diags->push_back(
          {file.path, micros->line, "R10",
           "one expression mixes microsecond quantity '" + micros->text + "' and day quantity '" +
               days->text +
               "'; convert explicitly through a units.h helper (UsToDays, DaysToUs, kUsPerDay)"});
    }
    binary = decimal = micros = days = nullptr;
    converter = false;
  };
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind == TokKind::kPunct &&
        (tok.text == ";" || tok.text == "{" || tok.text == "}" || tok.text == ",")) {
      flush(i);
      stmt_start = i + 1;
      continue;
    }
    if (tok.kind == TokKind::kNumber) {
      const std::string normalized = NormalizeNumber(tok.text);
      if (IsUnitMagnitude(normalized)) {
        diags->push_back(
            {file.path, tok.line, "R10",
             "raw unit literal " + tok.text +
                 " outside src/common/units.h; spell it with the named constant (kKiB, kMiB, "
                 "kGiB, kMB, ...) or justify with soslint:allow(R10) <reason>"});
      }
      continue;
    }
    if (tok.kind != TokKind::kIdent) {
      continue;
    }
    if (kConverters.count(tok.text) > 0) {
      converter = true;
    } else if (kBinary.count(tok.text) > 0) {
      if (binary == nullptr) {
        binary = &tok;
      }
    } else if (kDecimal.count(tok.text) > 0) {
      if (decimal == nullptr) {
        decimal = &tok;
      }
    } else if (kMicros.count(tok.text) > 0 || EndsWith(tok.text, "_us")) {
      if (micros == nullptr) {
        micros = &tok;
      }
    } else if (EndsWith(tok.text, "_days")) {
      if (days == nullptr) {
        days = &tok;
      }
    }
  }
  flush(tokens.size());
  (void)stmt_start;
}

// ---------------------------------------------------------------------------
// JSON helpers (emission + the minimal parser the baseline needs).
// ---------------------------------------------------------------------------

void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

// A deliberately tiny JSON reader: objects, arrays, strings, and integers --
// the baseline grammar. Anything else is a parse error.
struct JsonReader {
  const std::string& src;
  size_t pos = 0;
  std::string error;

  explicit JsonReader(const std::string& s) : src(s) {}

  void SkipWs() {
    while (pos < src.size() && std::isspace(static_cast<unsigned char>(src[pos])) != 0) {
      ++pos;
    }
  }
  bool Fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }
  bool Expect(char c) {
    SkipWs();
    if (pos >= src.size() || src[pos] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }
  bool Peek(char c) {
    SkipWs();
    return pos < src.size() && src[pos] == c;
  }
  bool ParseString(std::string* out) {
    SkipWs();
    if (pos >= src.size() || src[pos] != '"') {
      return Fail("expected string");
    }
    ++pos;
    out->clear();
    while (pos < src.size() && src[pos] != '"') {
      char c = src[pos++];
      if (c == '\\' && pos < src.size()) {
        const char esc = src[pos++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case '"':
          case '\\':
          case '/':
            c = esc;
            break;
          case 'u': {
            // Baseline strings only ever escape control characters; decode
            // the code unit as a byte and move on.
            if (pos + 4 > src.size()) {
              return Fail("truncated \\u escape");
            }
            c = static_cast<char>(std::stoi(src.substr(pos, 4), nullptr, 16));
            pos += 4;
            break;
          }
          default:
            return Fail("unsupported escape");
        }
      }
      *out += c;
    }
    if (pos >= src.size()) {
      return Fail("unterminated string");
    }
    ++pos;  // closing quote
    return true;
  }
  bool ParseInt(int* out) {
    SkipWs();
    const size_t start = pos;
    if (pos < src.size() && src[pos] == '-') {
      ++pos;
    }
    while (pos < src.size() && std::isdigit(static_cast<unsigned char>(src[pos])) != 0) {
      ++pos;
    }
    if (pos == start) {
      return Fail("expected integer");
    }
    *out = std::stoi(src.substr(start, pos - start));
    return true;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------------

SymbolIndex BuildIndex(const std::vector<SourceFile>& files) {
  SymbolIndex index;
  static const std::unordered_set<std::string> kDeclQualifiers = {"&", "*", "const"};
  static const std::unordered_set<std::string> kFnTails = {
      "{", ";", "const", "override", "final", "noexcept", "=", ":",
  };
  for (const SourceFile& file : files) {
    const Lexed lexed = Lex(file.content);
    const std::vector<Token>& tokens = lexed.tokens;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].kind != TokKind::kIdent) {
        continue;
      }
      const std::string& t = tokens[i].text;
      // --- unordered container declarations (R1) ---
      if (t == "unordered_map" || t == "unordered_set") {
        size_t j = SkipTemplateArgs(tokens, i);
        while (j < tokens.size() && tokens[j].kind == TokKind::kPunct &&
               kDeclQualifiers.count(tokens[j].text) > 0) {
          ++j;
        }
        if (j < tokens.size() && tokens[j].text == "const") {
          ++j;
        }
        if (j < tokens.size() && tokens[j].kind == TokKind::kIdent) {
          index.unordered_names.insert(tokens[j].text);
        }
        continue;
      }
      // --- fallible function signatures (R7) ---
      if (t == "Status" || t == "Result") {
        size_t j = i + 1;
        if (t == "Result") {
          if (j >= tokens.size() || tokens[j].text != "<") {
            continue;  // plain `Result` identifier, not the template
          }
          j = SkipTemplateArgs(tokens, i);
        }
        // Skip `Class::` qualifiers on out-of-line definitions.
        while (j + 1 < tokens.size() && tokens[j].kind == TokKind::kIdent &&
               tokens[j + 1].text == "::") {
          j += 2;
        }
        if (j + 1 >= tokens.size() || tokens[j].kind != TokKind::kIdent ||
            tokens[j + 1].text != "(") {
          continue;
        }
        // Project style: functions are PascalCase, variables snake_case --
        // the cheap filter that keeps `Status s(...)` out of the index.
        const std::string& name = tokens[j].text;
        if (!IsUpper(name)) {
          continue;
        }
        const size_t close = MatchingClose(tokens, j + 1);
        if (close + 1 >= tokens.size() || kFnTails.count(tokens[close + 1].text) == 0) {
          continue;
        }
        index.fallible_fns.emplace(name, FallibleFn{file.path, tokens[j].line, t});
        continue;
      }
      // --- double-typed names (R9) ---
      if (t == "double" || t == "float") {
        size_t j = i + 1;
        while (j < tokens.size() && tokens[j].kind == TokKind::kPunct &&
               kDeclQualifiers.count(tokens[j].text) > 0) {
          ++j;
        }
        if (j < tokens.size() && tokens[j].kind == TokKind::kIdent &&
            tokens[j].text.size() >= 2) {
          index.double_idents.insert(tokens[j].text);
        }
        continue;
      }
      // --- internally synchronized class types (R8) ---
      if (t == "class" || t == "struct") {
        // Skip `template <class T>` parameters and `enum class`.
        if (i > 0 && (tokens[i - 1].text == "<" || tokens[i - 1].text == "," ||
                      tokens[i - 1].text == "enum")) {
          continue;
        }
        if (i + 1 >= tokens.size() || tokens[i + 1].kind != TokKind::kIdent) {
          continue;
        }
        const std::string& name = tokens[i + 1].text;
        size_t j = i + 2;  // scan past `final` / base clause to the body
        while (j < tokens.size() && tokens[j].text != "{" && tokens[j].text != ";") {
          ++j;
        }
        if (j >= tokens.size() || tokens[j].text != "{") {
          continue;  // forward declaration
        }
        const size_t close = MatchingClose(tokens, j);
        for (size_t m = j + 1; m < close && m < tokens.size(); ++m) {
          if (tokens[m].kind == TokKind::kIdent &&
              (tokens[m].text == "mutex" || tokens[m].text == "condition_variable" ||
               tokens[m].text == "atomic" || tokens[m].text == "Mutex")) {
            index.synchronized_types.insert(name);
            break;
          }
        }
        continue;
      }
    }
  }
  // Second sub-pass: now that every synchronized type is known, collect the
  // identifiers declared with one anywhere in the tree (members, locals,
  // parameters). Cross-TU on purpose: the queue class lives in src/serve,
  // its instances in whoever hands work to a pool.
  if (!index.synchronized_types.empty()) {
    for (const SourceFile& file : files) {
      const Lexed lexed = Lex(file.content);
      const std::vector<Token>& tokens = lexed.tokens;
      for (size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind != TokKind::kIdent ||
            index.synchronized_types.count(tokens[i].text) == 0) {
          continue;
        }
        size_t j = SkipTemplateArgs(tokens, i);
        while (j < tokens.size() && tokens[j].kind == TokKind::kPunct &&
               kDeclQualifiers.count(tokens[j].text) > 0) {
          ++j;
        }
        if (j < tokens.size() && tokens[j].kind == TokKind::kIdent &&
            tokens[j].text.size() >= 2) {
          index.sync_idents.insert(tokens[j].text);
        }
      }
    }
  }
  return index;
}

std::vector<Diagnostic> LintFile(const SourceFile& file, const SymbolIndex& index) {
  const Lexed lexed = Lex(file.content);
  const AllowTable allows = ParseAllows(file.path, lexed.comments);
  const std::vector<size_t> scope_close = BuildScopeClose(lexed.tokens);

  std::vector<Diagnostic> raw;
  CheckUnorderedIteration(file, lexed.tokens, index.unordered_names, &raw);
  CheckBannedEntropy(file, lexed.tokens, &raw);
  CheckIncludes(file, lexed.tokens, &raw);
  CheckHeaderGuard(file, lexed.tokens, &raw);
  CheckAssertSideEffects(file, lexed.tokens, &raw);
  CheckSwallowedRecoveryStatus(file, lexed.tokens, &raw);
  CheckStatusFlow(file, lexed.tokens, scope_close, index, &raw);
  CheckThreadPoolCaptures(file, lexed.tokens, index, &raw);
  CheckFloatFormatting(file, lexed.tokens, index, &raw);
  CheckUnitHygiene(file, lexed.tokens, &raw);

  std::vector<Diagnostic> diags;
  for (Diagnostic& diag : raw) {
    if (!IsAllowed(allows, diag.line, diag.rule)) {
      diags.push_back(std::move(diag));
    }
  }
  diags.insert(diags.end(), allows.malformed.begin(), allows.malformed.end());
  return diags;
}

std::vector<Diagnostic> LintTree(const std::vector<SourceFile>& files) {
  const SymbolIndex index = BuildIndex(files);
  std::vector<Diagnostic> diags;
  for (const SourceFile& file : files) {
    std::vector<Diagnostic> file_diags = LintFile(file, index);
    diags.insert(diags.end(), std::make_move_iterator(file_diags.begin()),
                 std::make_move_iterator(file_diags.end()));
  }
  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  return diags;
}

std::string FormatDiagnostic(const Diagnostic& diag) {
  return diag.file + ":" + std::to_string(diag.line) + ": [" + diag.rule + "] " + diag.message;
}

std::string FormatReportJson(const std::vector<Diagnostic>& diags, size_t files_scanned) {
  std::string out = "{\n  \"schema\": 1,\n  \"files_scanned\": " +
                    std::to_string(files_scanned) + ",\n  \"diagnostics\": [";
  for (size_t i = 0; i < diags.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": ";
    AppendJsonString(&out, diags[i].file);
    out += ", \"line\": " + std::to_string(diags[i].line) + ", \"rule\": ";
    AppendJsonString(&out, diags[i].rule);
    out += ", \"message\": ";
    AppendJsonString(&out, diags[i].message);
    out += "}";
  }
  out += diags.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string WriteBaselineJson(const std::vector<Diagnostic>& diags) {
  std::string out = "{\n  \"schema\": 1,\n  \"entries\": [";
  for (size_t i = 0; i < diags.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": ";
    AppendJsonString(&out, diags[i].file);
    out += ", \"line\": " + std::to_string(diags[i].line) + ", \"rule\": ";
    AppendJsonString(&out, diags[i].rule);
    out += ", \"note\": ";
    AppendJsonString(&out, "TODO: justify this entry or fix it");
    out += "}";
  }
  out += diags.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool ParseBaselineJson(const std::string& json, Baseline* out, std::string* error) {
  out->entries.clear();
  JsonReader reader(json);
  auto fail = [&](const std::string& fallback) {
    *error = reader.error.empty() ? fallback : reader.error;
    return false;
  };
  if (!reader.Expect('{')) {
    return fail("baseline is not a JSON object");
  }
  bool first_key = true;
  while (true) {
    reader.SkipWs();
    if (reader.Peek('}')) {
      ++reader.pos;
      break;
    }
    if (!first_key && !reader.Expect(',')) {
      return fail("malformed baseline object");
    }
    first_key = false;
    std::string key;
    if (!reader.ParseString(&key) || !reader.Expect(':')) {
      return fail("malformed baseline key");
    }
    if (key == "schema") {
      int schema = 0;
      if (!reader.ParseInt(&schema)) {
        return fail("malformed schema");
      }
      if (schema != 1) {
        *error = "unsupported baseline schema " + std::to_string(schema);
        return false;
      }
    } else if (key == "entries") {
      if (!reader.Expect('[')) {
        return fail("entries is not an array");
      }
      bool first_entry = true;
      while (true) {
        reader.SkipWs();
        if (reader.Peek(']')) {
          ++reader.pos;
          break;
        }
        if (!first_entry && !reader.Expect(',')) {
          return fail("malformed entries array");
        }
        first_entry = false;
        if (!reader.Expect('{')) {
          return fail("baseline entry is not an object");
        }
        BaselineEntry entry;
        bool first_field = true;
        while (true) {
          reader.SkipWs();
          if (reader.Peek('}')) {
            ++reader.pos;
            break;
          }
          if (!first_field && !reader.Expect(',')) {
            return fail("malformed baseline entry");
          }
          first_field = false;
          std::string field;
          if (!reader.ParseString(&field) || !reader.Expect(':')) {
            return fail("malformed baseline entry field");
          }
          if (field == "line") {
            if (!reader.ParseInt(&entry.line)) {
              return fail("malformed line");
            }
          } else {
            std::string value;
            if (!reader.ParseString(&value)) {
              return fail("malformed value for '" + field + "'");
            }
            if (field == "file") {
              entry.file = value;
            } else if (field == "rule") {
              entry.rule = value;
            } else if (field == "note") {
              entry.note = value;
            } else {
              *error = "unknown baseline entry field '" + field + "'";
              return false;
            }
          }
        }
        if (entry.file.empty() || entry.rule.empty() || entry.line <= 0) {
          *error = "baseline entry missing file/line/rule";
          return false;
        }
        if (!IsKnownRule(entry.rule)) {
          *error = "baseline entry names unknown rule '" + entry.rule + "'";
          return false;
        }
        if (entry.note.empty()) {
          *error = "baseline entry for " + entry.file + ":" + std::to_string(entry.line) +
                   " has no note -- every suppression needs a justification";
          return false;
        }
        out->entries.push_back(std::move(entry));
      }
    } else {
      *error = "unknown baseline key '" + key + "'";
      return false;
    }
  }
  return true;
}

std::vector<Diagnostic> ApplyBaseline(std::vector<Diagnostic> diags, const Baseline& baseline) {
  std::vector<Diagnostic> out;
  std::vector<bool> used(baseline.entries.size(), false);
  for (Diagnostic& diag : diags) {
    bool suppressed = false;
    for (size_t i = 0; i < baseline.entries.size(); ++i) {
      const BaselineEntry& entry = baseline.entries[i];
      if (entry.file == diag.file && entry.line == diag.line && entry.rule == diag.rule) {
        used[i] = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) {
      out.push_back(std::move(diag));
    }
  }
  for (size_t i = 0; i < baseline.entries.size(); ++i) {
    if (used[i]) {
      continue;
    }
    const BaselineEntry& entry = baseline.entries[i];
    out.push_back({entry.file, entry.line, "R5",
                   "stale baseline entry (" + entry.rule +
                       ") no longer matches any diagnostic; delete it from "
                       "tools/soslint/baseline.json -- the baseline only shrinks"});
  }
  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  return out;
}

}  // namespace sos::lint
