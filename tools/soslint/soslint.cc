// Copyright (c) 2026 The SOS Authors. MIT License.

#include "tools/soslint/soslint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_set>
#include <vector>

namespace sos::lint {
namespace {

// ---------------------------------------------------------------------------
// Lexer: comments and string literals are stripped from the token stream
// (comments are kept separately so allow-directives can be parsed), multi-char
// operators are lexed as single tokens so "==" never reads as two "=".
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Comment {
  int line;  // line the comment starts on
  std::string text;
};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Longest-match puncts that matter for the rules (assignment vs comparison,
// template closers, stream output). Everything else falls through as 1 char.
constexpr std::array<const char*, 24> kMultiPunct = {
    "<<=", ">>=", "...", "->*", "->", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>",  "++",  "--",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=", "::",
};

struct Lexed {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

bool IsRawStringPrefix(const std::string& ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" || ident == "LR";
}

Lexed Lex(const std::string& src) {
  Lexed out;
  const size_t n = src.size();
  size_t i = 0;
  int line = 1;
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const size_t start = i;
      while (i < n && src[i] != '\n') {
        ++i;
      }
      out.comments.push_back({line, src.substr(start, i - start)});
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      const size_t start = i;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          ++line;
        }
        ++i;
      }
      i = i + 1 < n ? i + 2 : n;
      out.comments.push_back({start_line, src.substr(start, i - start)});
      continue;
    }
    // String literal (raw strings are handled from the identifier path below,
    // since the R prefix lexes as an identifier first).
    if (c == '"') {
      const size_t start = ++i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < n) {
          ++i;
        }
        if (src[i] == '\n') {
          ++line;  // unterminated string; keep line counts sane
        }
        ++i;
      }
      out.tokens.push_back({TokKind::kString, src.substr(start, i - start), line});
      i = i < n ? i + 1 : n;
      continue;
    }
    if (c == '\'') {
      ++i;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) {
          ++i;
        }
        ++i;
      }
      i = i < n ? i + 1 : n;
      continue;  // char literals carry no lint signal
    }
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(src[i])) {
        ++i;
      }
      std::string ident = src.substr(start, i - start);
      // Raw string literal: R"delim( ... )delim"
      if (i < n && src[i] == '"' && IsRawStringPrefix(ident)) {
        ++i;
        std::string delim;
        while (i < n && src[i] != '(') {
          delim += src[i++];
        }
        const std::string closer = ")" + delim + "\"";
        const size_t body_start = i < n ? i + 1 : n;
        const size_t end = src.find(closer, body_start);
        const size_t body_end = end == std::string::npos ? n : end;
        for (size_t k = body_start; k < body_end; ++k) {
          if (src[k] == '\n') {
            ++line;
          }
        }
        out.tokens.push_back({TokKind::kString, "", line});
        i = end == std::string::npos ? n : end + closer.size();
        continue;
      }
      out.tokens.push_back({TokKind::kIdent, std::move(ident), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const size_t start = i;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.' || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
                         src[i - 1] == 'P')))) {
        ++i;
      }
      out.tokens.push_back({TokKind::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // Punctuation: longest multi-char operator first.
    bool matched = false;
    for (const char* op : kMultiPunct) {
      const size_t len = std::char_traits<char>::length(op);
      if (src.compare(i, len, op) == 0) {
        out.tokens.push_back({TokKind::kPunct, op, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Allow-directives (rule R5).
// ---------------------------------------------------------------------------

constexpr std::array<const char*, 6> kRules = {"R1", "R2", "R3", "R4", "R5", "R6"};

bool IsKnownRule(const std::string& rule) {
  return std::find(kRules.begin(), kRules.end(), rule) != kRules.end();
}

struct AllowTable {
  // line -> rules allowed on that line and the next.
  std::map<int, std::set<std::string>> by_line;
  std::vector<Diagnostic> malformed;
};

AllowTable ParseAllows(const std::string& path, const std::vector<Comment>& comments) {
  AllowTable table;
  constexpr const char* kKey = "soslint:allow";
  for (const Comment& comment : comments) {
    size_t pos = 0;
    while ((pos = comment.text.find(kKey, pos)) != std::string::npos) {
      pos += std::char_traits<char>::length(kKey);
      const size_t open = comment.text.find_first_not_of(' ', pos);
      if (open == std::string::npos || comment.text[open] != '(') {
        table.malformed.push_back({path, comment.line, "R5",
                                   "malformed soslint:allow -- expected soslint:allow(<rule>) "
                                   "<reason>"});
        continue;
      }
      const size_t close = comment.text.find(')', open);
      if (close == std::string::npos) {
        table.malformed.push_back({path, comment.line, "R5",
                                   "malformed soslint:allow -- missing ')'"});
        continue;
      }
      const std::string rule = comment.text.substr(open + 1, close - open - 1);
      if (!IsKnownRule(rule)) {
        table.malformed.push_back({path, comment.line, "R5",
                                   "soslint:allow names unknown rule '" + rule + "'"});
        continue;
      }
      const size_t reason = comment.text.find_first_not_of(" \t", close + 1);
      if (reason == std::string::npos) {
        table.malformed.push_back({path, comment.line, "R5",
                                   "soslint:allow(" + rule +
                                       ") has no reason -- justify the suppression"});
        continue;
      }
      table.by_line[comment.line].insert(rule);
    }
  }
  return table;
}

bool IsAllowed(const AllowTable& table, int line, const std::string& rule) {
  for (const int l : {line, line - 1}) {
    auto it = table.by_line.find(l);
    if (it != table.by_line.end() && it->second.count(rule) > 0) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Small token-stream helpers.
// ---------------------------------------------------------------------------

// Index of the token matching the opener at `open_index` ('(' / '{' / '['),
// or tokens.size() when unbalanced.
size_t MatchingClose(const std::vector<Token>& tokens, size_t open_index) {
  const std::string& open = tokens[open_index].text;
  const std::string close = open == "(" ? ")" : open == "{" ? "}" : "]";
  int depth = 0;
  for (size_t i = open_index; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct) {
      continue;
    }
    if (tokens[i].text == open) {
      ++depth;
    } else if (tokens[i].text == close) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return tokens.size();
}

// After tokens[i] == "unordered_map"/"unordered_set", skips the template
// argument list (handling ">>" closing two levels) and returns the index of
// the first token past it.
size_t SkipTemplateArgs(const std::vector<Token>& tokens, size_t i) {
  size_t j = i + 1;
  if (j >= tokens.size() || tokens[j].text != "<") {
    return j;
  }
  int depth = 0;
  for (; j < tokens.size(); ++j) {
    if (tokens[j].kind != TokKind::kPunct) {
      continue;
    }
    if (tokens[j].text == "<") {
      ++depth;
    } else if (tokens[j].text == "<<") {
      depth += 2;
    } else if (tokens[j].text == ">") {
      if (--depth == 0) {
        return j + 1;
      }
    } else if (tokens[j].text == ">>") {
      depth -= 2;
      if (depth <= 0) {
        return j + 1;
      }
    }
  }
  return j;
}

// ---------------------------------------------------------------------------
// R1: iteration over unordered containers.
// ---------------------------------------------------------------------------

const std::unordered_set<std::string>& SinkIdents() {
  static const std::unordered_set<std::string> kSinks = {
      "printf", "fprintf", "snprintf", "cout",  "cerr",        "AddRow",
      "Print",  "PrintTo", "push_back", "emplace_back", "append",
  };
  return kSinks;
}

void CheckUnorderedIteration(const SourceFile& file, const std::vector<Token>& tokens,
                             const std::unordered_set<std::string>& unordered_names,
                             std::vector<Diagnostic>* diags) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent || tokens[i].text != "for") {
      continue;
    }
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") {
      continue;
    }
    const size_t close = MatchingClose(tokens, i + 1);
    if (close >= tokens.size()) {
      continue;
    }
    // Range-for: a ':' at paren depth 1 (the lexer emits '::' as one token,
    // so scope resolution cannot masquerade as the range separator).
    size_t colon = tokens.size();
    int depth = 0;
    for (size_t j = i + 1; j < close; ++j) {
      if (tokens[j].kind != TokKind::kPunct) {
        continue;
      }
      if (tokens[j].text == "(" || tokens[j].text == "[" || tokens[j].text == "{") {
        ++depth;
      } else if (tokens[j].text == ")" || tokens[j].text == "]" || tokens[j].text == "}") {
        --depth;
      } else if (tokens[j].text == ":" && depth == 1) {
        colon = j;
        break;
      }
    }
    if (colon == tokens.size()) {
      continue;  // classic for loop
    }
    // Does the range expression name a known-unordered container? Wrapping
    // the container in the sanctioned sort helpers yields ordered keys, so
    // those loops are safe by construction.
    std::string container;
    bool sorted_wrapper = false;
    for (size_t j = colon + 1; j < close; ++j) {
      if (tokens[j].kind == TokKind::kIdent &&
          (tokens[j].text == "SortedKeys" || tokens[j].text == "SortedElements")) {
        sorted_wrapper = true;
        break;
      }
      if (tokens[j].kind == TokKind::kIdent &&
          (unordered_names.count(tokens[j].text) > 0 || tokens[j].text == "unordered_map" ||
           tokens[j].text == "unordered_set")) {
        container = tokens[j].text;
        break;
      }
    }
    if (sorted_wrapper || container.empty()) {
      continue;
    }
    // Enrich the message with any ordered-output sink in the loop body.
    std::string sinks;
    if (close + 1 < tokens.size() && tokens[close + 1].text == "{") {
      const size_t body_end = MatchingClose(tokens, close + 1);
      for (size_t j = close + 2; j < body_end && j < tokens.size(); ++j) {
        const bool is_sink =
            (tokens[j].kind == TokKind::kIdent && SinkIdents().count(tokens[j].text) > 0) ||
            (tokens[j].kind == TokKind::kPunct && tokens[j].text == "<<");
        if (is_sink && sinks.find(tokens[j].text) == std::string::npos) {
          sinks += sinks.empty() ? tokens[j].text : ", " + tokens[j].text;
        }
      }
    }
    std::string message = "iteration over unordered container '" + container + "'";
    if (!sinks.empty()) {
      message += " whose body feeds ordered output (" + sinks + ")";
    }
    message +=
        "; hash order is not portable across standard libraries -- iterate "
        "sorted keys (see SortedKeys in src/common/container_util.h) or "
        "justify with soslint:allow(R1) <reason>";
    diags->push_back({file.path, tokens[i].line, "R1", std::move(message)});
  }
}

// ---------------------------------------------------------------------------
// R2: ambient randomness / wall-clock time.
// ---------------------------------------------------------------------------

bool IsR2Exempt(const std::string& path) {
  return path == "src/common/rng.h" || path == "src/common/rng.cc" ||
         path == "src/common/sim_clock.h";
}

void CheckBannedEntropy(const SourceFile& file, const std::vector<Token>& tokens,
                        std::vector<Diagnostic>* diags) {
  if (IsR2Exempt(file.path)) {
    return;
  }
  static const std::unordered_set<std::string> kBanned = {
      "rand",         "srand",        "drand48",      "lrand48",
      "random_device", "system_clock", "gettimeofday", "clock_gettime",
      "localtime",    "gmtime",       "mt19937",      "mt19937_64",
      "default_random_engine",
  };
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent) {
      continue;
    }
    const std::string& t = tokens[i].text;
    const bool banned =
        kBanned.count(t) > 0 ||
        // `time` only as an explicit call through `::`/`std::`; a bare `time`
        // identifier is too common to ban outright.
        (t == "time" && i > 0 && tokens[i - 1].text == "::");
    if (banned) {
      diags->push_back({file.path, tokens[i].line, "R2",
                        "'" + t +
                            "' is a nondeterminism source; all entropy must come from "
                            "src/common/rng.h (DeriveSeed) and all time from SimClock"});
    }
  }
}

// ---------------------------------------------------------------------------
// R3: include style + header guards.
// ---------------------------------------------------------------------------

std::string ExpectedGuard(const std::string& path) {
  std::string guard = "SOS_";
  for (const char c : path) {
    if (c == '/' || c == '.') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

void CheckIncludes(const SourceFile& file, const std::vector<Token>& tokens,
                   std::vector<Diagnostic>* diags) {
  static const std::array<const char*, 5> kPrefixes = {"src/", "tests/", "bench/", "tools/",
                                                       "examples/"};
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].text != "#" || tokens[i + 1].text != "include" ||
        tokens[i + 2].kind != TokKind::kString) {
      continue;
    }
    const std::string& inc = tokens[i + 2].text;
    const bool ok = std::any_of(kPrefixes.begin(), kPrefixes.end(), [&inc](const char* p) {
      return inc.rfind(p, 0) == 0;
    });
    if (!ok) {
      diags->push_back({file.path, tokens[i].line, "R3",
                        "#include \"" + inc +
                            "\" must use the full repository path (e.g. "
                            "#include \"src/common/status.h\")"});
    }
  }
}

void CheckHeaderGuard(const SourceFile& file, const std::vector<Token>& tokens,
                      std::vector<Diagnostic>* diags) {
  if (file.path.size() < 2 || file.path.compare(file.path.size() - 2, 2, ".h") != 0) {
    return;
  }
  const std::string expected = ExpectedGuard(file.path);
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].text != "#") {
      continue;
    }
    if (tokens[i + 1].text == "pragma") {
      diags->push_back({file.path, tokens[i].line, "R3",
                        "use an include guard named " + expected + ", not #pragma once"});
      return;
    }
    if (tokens[i + 1].text == "ifndef") {
      if (i + 2 >= tokens.size() || tokens[i + 2].text != expected) {
        const std::string got = i + 2 < tokens.size() ? tokens[i + 2].text : "<missing>";
        diags->push_back({file.path, tokens[i].line, "R3",
                          "header guard '" + got + "' should be '" + expected + "'"});
      }
      return;
    }
  }
  diags->push_back({file.path, 1, "R3", "missing include guard " + expected});
}

// ---------------------------------------------------------------------------
// R4: assert with side effects.
// ---------------------------------------------------------------------------

void CheckAssertSideEffects(const SourceFile& file, const std::vector<Token>& tokens,
                            std::vector<Diagnostic>* diags) {
  static const std::unordered_set<std::string> kMutating = {
      "=",  "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
  };
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent || tokens[i].text != "assert" ||
        tokens[i + 1].text != "(") {
      continue;
    }
    const size_t close = MatchingClose(tokens, i + 1);
    for (size_t j = i + 2; j < close && j < tokens.size(); ++j) {
      if (tokens[j].kind == TokKind::kPunct && kMutating.count(tokens[j].text) > 0) {
        diags->push_back({file.path, tokens[i].line, "R4",
                          "assert() argument contains '" + tokens[j].text +
                              "'; side effects inside assert change behavior under NDEBUG"});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R6: swallowed Status/Result on recovery and fault-injection paths.
// ---------------------------------------------------------------------------
//
// [[nodiscard]] already rejects a plain discard at compile time; what it
// cannot catch is `(void)`-laundering or a refactor that drops the marker.
// On crash-recovery code a swallowed error is exactly the bug the subsystem
// exists to surface, so the recovery entry points get a dedicated lint:
// their Status must be assigned, tested, returned, or explicitly waived
// through IgnoreResult() (which is grep-able and reviewed).

bool IsR6Scoped(const std::string& path) {
  return path.rfind("src/fault/", 0) == 0 || path.rfind("src/ftl/", 0) == 0 ||
         path.rfind("src/sos/", 0) == 0;
}

bool IsR6Callee(const std::string& name) {
  return name.rfind("Recover", 0) == 0 || name == "DropBadBlock" || name == "GateOp";
}

void CheckSwallowedRecoveryStatus(const SourceFile& file, const std::vector<Token>& tokens,
                                  std::vector<Diagnostic>* diags) {
  if (!IsR6Scoped(file.path)) {
    return;
  }
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent || !IsR6Callee(tokens[i].text) ||
        tokens[i + 1].text != "(") {
      continue;
    }
    // Walk back over the receiver chain (`ftl_->`, `device.ftl().`) to the
    // statement head; what precedes it decides whether the result is used.
    size_t k = i;
    while (k > 0) {
      const std::string& prev = tokens[k - 1].text;
      if (prev == "." || prev == "->" || prev == "::") {
        k -= 1;
        if (k > 0) {
          --k;  // the receiver token itself (identifier, ')' or ']')
        }
        continue;
      }
      break;
    }
    const bool bare = k == 0 || tokens[k - 1].text == ";" || tokens[k - 1].text == "{" ||
                      tokens[k - 1].text == "}" || tokens[k - 1].text == "else";
    const bool void_cast = k >= 3 && tokens[k - 1].text == ")" && tokens[k - 2].text == "void" &&
                           tokens[k - 3].text == "(";
    if (bare || void_cast) {
      diags->push_back(
          {file.path, tokens[i].line, "R6",
           std::string(void_cast ? "(void)-casting" : "discarding") + " the Status of '" +
               tokens[i].text +
               "' swallows a recovery/fault-path error; handle it, propagate it, or waive it "
               "explicitly with IgnoreResult(...)"});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------------

std::vector<std::string> CollectUnorderedNames(const std::vector<SourceFile>& files) {
  std::set<std::string> names;
  for (const SourceFile& file : files) {
    const Lexed lexed = Lex(file.content);
    const std::vector<Token>& tokens = lexed.tokens;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].kind != TokKind::kIdent ||
          (tokens[i].text != "unordered_map" && tokens[i].text != "unordered_set")) {
        continue;
      }
      size_t j = SkipTemplateArgs(tokens, i);
      // Skip declarator qualifiers between the type and the declared name.
      while (j < tokens.size() &&
             (tokens[j].text == "&" || tokens[j].text == "*" || tokens[j].text == "const")) {
        ++j;
      }
      if (j < tokens.size() && tokens[j].kind == TokKind::kIdent) {
        names.insert(tokens[j].text);
      }
    }
  }
  return {names.begin(), names.end()};
}

std::vector<Diagnostic> LintFile(const SourceFile& file,
                                 const std::vector<std::string>& unordered_names) {
  const Lexed lexed = Lex(file.content);
  const AllowTable allows = ParseAllows(file.path, lexed.comments);
  const std::unordered_set<std::string> names(unordered_names.begin(), unordered_names.end());

  std::vector<Diagnostic> raw;
  CheckUnorderedIteration(file, lexed.tokens, names, &raw);
  CheckBannedEntropy(file, lexed.tokens, &raw);
  CheckIncludes(file, lexed.tokens, &raw);
  CheckHeaderGuard(file, lexed.tokens, &raw);
  CheckAssertSideEffects(file, lexed.tokens, &raw);
  CheckSwallowedRecoveryStatus(file, lexed.tokens, &raw);

  std::vector<Diagnostic> diags;
  for (Diagnostic& diag : raw) {
    if (!IsAllowed(allows, diag.line, diag.rule)) {
      diags.push_back(std::move(diag));
    }
  }
  diags.insert(diags.end(), allows.malformed.begin(), allows.malformed.end());
  return diags;
}

std::vector<Diagnostic> LintTree(const std::vector<SourceFile>& files) {
  const std::vector<std::string> unordered_names = CollectUnorderedNames(files);
  std::vector<Diagnostic> diags;
  for (const SourceFile& file : files) {
    std::vector<Diagnostic> file_diags = LintFile(file, unordered_names);
    diags.insert(diags.end(), std::make_move_iterator(file_diags.begin()),
                 std::make_move_iterator(file_diags.end()));
  }
  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  return diags;
}

std::string FormatDiagnostic(const Diagnostic& diag) {
  return diag.file + ":" + std::to_string(diag.line) + ": [" + diag.rule + "] " + diag.message;
}

}  // namespace sos::lint
