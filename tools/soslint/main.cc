// Copyright (c) 2026 The SOS Authors. MIT License.
//
// soslint driver: lints every .h/.cc/.cpp under the repo's source directories.
//
//   soslint <repo-root> [subdir ...] [options]
//
// Options:
//   --format=text|json        diagnostic output format (default text)
//   --json-out=<path>         additionally write the JSON report to a file
//                             (for CI artifacts, regardless of --format)
//   --baseline=<path>         suppress diagnostics enumerated in a baseline
//                             file; stale entries are themselves violations.
//                             Defaults to <root>/tools/soslint/baseline.json
//                             when that file exists. --baseline=none disables.
//   --write-baseline=<path>   write the current diagnostics as a baseline
//                             file (notes prefilled for human editing) and
//                             exit 0. Used once when a new rule lands.
//
// With no subdirs, lints src/ tests/ bench/ examples/ tools/. Text output is
// one diagnostic per line in file:line: [Rn] form (sorted, so output is
// stable for CI diffing). Exit code: 0 clean, 1 violations, 2 usage/IO error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/soslint/soslint.h"

namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "soslint: cannot read %s\n", path.string().c_str());
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  if (!out) {
    std::fprintf(stderr, "soslint: cannot write %s\n", path.c_str());
    std::exit(2);
  }
}

// Repo-relative path with '/' separators (header-guard names depend on it).
std::string RelativePath(const fs::path& root, const fs::path& path) {
  std::string rel = fs::relative(path, root).generic_string();
  return rel;
}

int Usage() {
  std::fprintf(stderr,
               "usage: soslint <repo-root> [subdir ...] [--format=text|json]\n"
               "               [--json-out=<path>] [--baseline=<path>|none]\n"
               "               [--write-baseline=<path>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_arg;
  std::vector<std::string> subdirs;
  std::string format = "text";
  std::string json_out;
  std::string baseline_path;  // empty = auto-detect, "none" = disabled
  std::string write_baseline_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const std::string& flag) {
      return arg.substr(flag.size());
    };
    if (arg.rfind("--format=", 0) == 0) {
      format = value_of("--format=");
      if (format != "text" && format != "json") {
        return Usage();
      }
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = value_of("--json-out=");
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value_of("--baseline=");
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = value_of("--write-baseline=");
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else if (root_arg.empty()) {
      root_arg = arg;
    } else {
      subdirs.push_back(arg);
    }
  }
  if (root_arg.empty()) {
    return Usage();
  }
  const fs::path root = root_arg;
  if (subdirs.empty()) {
    subdirs = {"src", "tests", "bench", "examples", "tools"};
  }

  std::vector<sos::lint::SourceFile> files;
  for (const std::string& subdir : subdirs) {
    const fs::path dir = root / subdir;
    if (!fs::exists(dir)) {
      continue;
    }
    if (fs::is_regular_file(dir)) {  // allow passing single files (CI diffs)
      files.push_back({RelativePath(root, dir), ReadFileOrDie(dir)});
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path())) {
        files.push_back({RelativePath(root, entry.path()), ReadFileOrDie(entry.path())});
      }
    }
  }
  // Directory iteration order is filesystem-dependent; sort so pass-1 name
  // collection and diagnostics are reproducible. (Practicing what we lint.)
  std::sort(files.begin(), files.end(),
            [](const sos::lint::SourceFile& a, const sos::lint::SourceFile& b) {
              return a.path < b.path;
            });

  std::vector<sos::lint::Diagnostic> diags = sos::lint::LintTree(files);

  if (!write_baseline_path.empty()) {
    WriteFileOrDie(write_baseline_path, sos::lint::WriteBaselineJson(diags));
    std::fprintf(stderr, "soslint: wrote %zu baseline entries to %s\n", diags.size(),
                 write_baseline_path.c_str());
    return 0;
  }

  if (baseline_path.empty()) {
    const fs::path auto_baseline = root / "tools" / "soslint" / "baseline.json";
    if (fs::exists(auto_baseline)) {
      baseline_path = auto_baseline.string();
    }
  }
  if (!baseline_path.empty() && baseline_path != "none") {
    sos::lint::Baseline baseline;
    std::string error;
    if (!sos::lint::ParseBaselineJson(ReadFileOrDie(baseline_path), &baseline, &error)) {
      std::fprintf(stderr, "soslint: bad baseline %s: %s\n", baseline_path.c_str(),
                   error.c_str());
      return 2;
    }
    diags = sos::lint::ApplyBaseline(std::move(diags), baseline);
  }

  const std::string json = sos::lint::FormatReportJson(diags, files.size());
  if (!json_out.empty()) {
    WriteFileOrDie(json_out, json);
  }
  if (format == "json") {
    std::fputs(json.c_str(), stdout);
  } else {
    for (const sos::lint::Diagnostic& diag : diags) {
      std::printf("%s\n", sos::lint::FormatDiagnostic(diag).c_str());
    }
  }
  if (!diags.empty()) {
    std::fprintf(stderr, "soslint: %zu violation(s) in %zu files scanned\n", diags.size(),
                 files.size());
    return 1;
  }
  std::fprintf(stderr, "soslint: clean (%zu files scanned)\n", files.size());
  return 0;
}
