// Copyright (c) 2026 The SOS Authors. MIT License.
//
// soslint driver: lints every .h/.cc under the repo's source directories.
//
//   soslint <repo-root> [subdir ...]
//
// With no subdirs, lints src/ tests/ bench/ examples/ tools/. Prints one
// diagnostic per line in file:line: [Rn] form (sorted, so output is stable
// for CI diffing) and exits nonzero when any violation remains.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/soslint/soslint.h"

namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "soslint: cannot read %s\n", path.string().c_str());
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Repo-relative path with '/' separators (header-guard names depend on it).
std::string RelativePath(const fs::path& root, const fs::path& path) {
  std::string rel = fs::relative(path, root).generic_string();
  return rel;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: soslint <repo-root> [subdir ...]\n");
    return 2;
  }
  const fs::path root = argv[1];
  std::vector<std::string> subdirs;
  for (int i = 2; i < argc; ++i) {
    subdirs.emplace_back(argv[i]);
  }
  if (subdirs.empty()) {
    subdirs = {"src", "tests", "bench", "examples", "tools"};
  }

  std::vector<sos::lint::SourceFile> files;
  for (const std::string& subdir : subdirs) {
    const fs::path dir = root / subdir;
    if (!fs::exists(dir)) {
      continue;
    }
    if (fs::is_regular_file(dir)) {  // allow passing single files (CI diffs)
      files.push_back({RelativePath(root, dir), ReadFileOrDie(dir)});
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path())) {
        files.push_back({RelativePath(root, entry.path()), ReadFileOrDie(entry.path())});
      }
    }
  }
  // Directory iteration order is filesystem-dependent; sort so pass-1 name
  // collection and diagnostics are reproducible. (Practicing what we lint.)
  std::sort(files.begin(), files.end(),
            [](const sos::lint::SourceFile& a, const sos::lint::SourceFile& b) {
              return a.path < b.path;
            });

  const std::vector<sos::lint::Diagnostic> diags = sos::lint::LintTree(files);
  for (const sos::lint::Diagnostic& diag : diags) {
    std::printf("%s\n", sos::lint::FormatDiagnostic(diag).c_str());
  }
  if (!diags.empty()) {
    std::fprintf(stderr, "soslint: %zu violation(s) in %zu files scanned\n", diags.size(),
                 files.size());
    return 1;
  }
  std::fprintf(stderr, "soslint: clean (%zu files scanned)\n", files.size());
  return 0;
}
