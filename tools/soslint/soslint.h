// Copyright (c) 2026 The SOS Authors. MIT License.
//
// soslint: project-specific static analysis for the SOS tree.
//
// The repo's value is bit-exact reproduction of the paper's numbers, so the
// lint rules target the two ways past PRs nearly lost that property:
// nondeterminism sneaking into output paths, and silently dropped Status
// values (the exact accounting failure SOS itself models).
//
// Rules (see DESIGN.md §8 for the full rationale table):
//   R1  No iteration over std::unordered_map/std::unordered_set. Hash-order
//       iteration feeding stdout (printf/Table/stream) or accumulating into
//       ordered output is nondeterministic across standard libraries; even
//       order-insensitive uses must carry a justification so refactors that
//       add a sink to the loop body get re-reviewed.
//   R2  No ambient randomness or wall-clock time (std::rand, srand, ::time,
//       std::random_device, std::chrono::system_clock, gettimeofday, ...)
//       outside src/common/rng.* and src/common/sim_clock.h. All entropy
//       must flow from explicit seeds; all time from SimClock.
//   R3  Project includes use full repository paths (#include "src/...") and
//       header guards follow SOS_<PATH>_H_.
//   R4  No assert() whose argument contains a side effect (++/--/assignment):
//       the tree keeps assertions on in optimized builds today, but a future
//       NDEBUG build must not change simulation results.
//   R5  Escape hatch: a comment `soslint:allow(R1) keys sorted below` on the
//       violating line or the line above suppresses the named rule there.
//       The reason text is mandatory; naming an unknown rule is itself a
//       violation. (DESIGN.md §8 documents the full grammar.)
//   R6  On recovery/fault paths (src/fault, src/ftl, src/sos) the Status of
//       Recover*/DropBadBlock/GateOp must not be swallowed: no bare calls
//       and no (void)-casts. [[nodiscard]] catches the former at compile
//       time; the lint also catches the (void) laundering and survives a
//       dropped attribute. IgnoreResult(...) is the sanctioned waiver.
//
// The linter is a token-level analysis (comments/strings stripped, operators
// lexed as single tokens), not a full parser: cheap enough to run as a ctest
// test on every build, strict enough that violations need a human-visible
// annotation rather than luck to pass.

#ifndef SOS_TOOLS_SOSLINT_SOSLINT_H_
#define SOS_TOOLS_SOSLINT_SOSLINT_H_

#include <string>
#include <vector>

namespace sos::lint {

struct SourceFile {
  std::string path;  // repo-relative, '/'-separated (e.g. "src/ftl/ftl.cc")
  std::string content;
};

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;     // "R1".."R5"
  std::string message;

  bool operator==(const Diagnostic& other) const = default;
};

// Pass 1: names of variables/members declared anywhere in `files` with an
// unordered container type. Shared across files so that iteration over a
// member declared in a header is caught at call sites in any .cc.
std::vector<std::string> CollectUnorderedNames(const std::vector<SourceFile>& files);

// Pass 2: lints one file against all rules.
std::vector<Diagnostic> LintFile(const SourceFile& file,
                                 const std::vector<std::string>& unordered_names);

// Convenience: both passes over a whole tree; diagnostics sorted by
// (file, line, rule) for deterministic output.
std::vector<Diagnostic> LintTree(const std::vector<SourceFile>& files);

// "src/ftl/ftl.cc:479: [R1] ..." -- the format editors and CI understand.
std::string FormatDiagnostic(const Diagnostic& diag);

}  // namespace sos::lint

#endif  // SOS_TOOLS_SOSLINT_SOSLINT_H_
