// Copyright (c) 2026 The SOS Authors. MIT License.
//
// soslint: project-specific static analysis for the SOS tree.
//
// The repo's value is bit-exact reproduction of the paper's numbers, so the
// lint rules target the ways past PRs nearly lost that property:
// nondeterminism sneaking into output paths, and silently dropped Status
// values (the exact accounting failure SOS itself models). v2 adds a
// project-wide symbol index so both failure modes are caught even when they
// span translation units: a fallible call laundered through a wrapper
// declared in another file, a thread-pool lambda mutating shared state, a
// bare `operator<<(double)` feeding a golden file.
//
// Rules (see DESIGN.md §8 for the full rationale table):
//   R1  No iteration over std::unordered_map/std::unordered_set. Hash-order
//       iteration feeding stdout (printf/Table/stream) or accumulating into
//       ordered output is nondeterministic across standard libraries; even
//       order-insensitive uses must carry a justification so refactors that
//       add a sink to the loop body get re-reviewed.
//   R2  No ambient randomness or wall-clock time (std::rand, srand, ::time,
//       std::random_device, std::chrono::system_clock, gettimeofday, ...)
//       outside src/common/rng.* and src/common/sim_clock.h. All entropy
//       must flow from explicit seeds; all time from SimClock.
//   R3  Project includes use full repository paths (#include "src/...") and
//       header guards follow SOS_<PATH>_H_.
//   R4  No assert() whose argument contains a side effect (++/--/assignment):
//       the tree keeps assertions on in optimized builds today, but a future
//       NDEBUG build must not change simulation results.
//   R5  Escape-hatch hygiene: a comment `soslint:allow(R1) keys sorted below`
//       on the violating line or the line above suppresses the named rule
//       there. The reason text is mandatory; naming an unknown rule is itself
//       a violation, and so is a baseline entry that no longer matches any
//       diagnostic (stale debt must be deleted, not hoarded).
//   R6  On recovery/fault paths (src/fault, src/ftl, src/sos) the Status of
//       Recover*/DropBadBlock/GateOp must not be swallowed: no bare calls
//       and no (void)-casts. [[nodiscard]] catches the former at compile
//       time; the lint also catches the (void) laundering and survives a
//       dropped attribute. IgnoreResult(...) is the sanctioned waiver.
//   R7  Cross-TU Status propagation. Pass 1 indexes every function in the
//       tree whose return type is Status or Result<T>; pass 2 requires the
//       result of each call to an indexed function to reach a sink: return,
//       an argument position, a condition, a checked variable (one that is
//       read again before its scope closes), or IgnoreResult(...). Catches
//       bare calls and (void)-casts even when the callee lives in another
//       file and has lost its [[nodiscard]], and catches `Status s = F();`
//       where `s` is never looked at again.
//   R8  Shared-mutable-capture race heuristic. A lambda handed to
//       ThreadPool::Submit / ParallelFor / ParallelMap that writes through a
//       by-reference capture must either write a per-index slot (an element
//       indexed by a lambda parameter, the ParallelMap contract), hold a
//       lock / use atomics in the body, or carry soslint:allow(R8). This
//       covers the bench drivers and one-shot tools TSan never runs.
//       Exemption: mutating calls through an identifier declared (anywhere
//       in the tree) with an internally synchronized type -- a class whose
//       body holds a std::mutex / condition_variable / atomic member, e.g.
//       serve::BoundedQueue -- are the sanctioned completion-queue hand-off
//       idiom and are not flagged.
//   R9  Golden-output float stability. Doubles reaching textual output must
//       go through fixed-precision formatting (snprintf/%.*f or the project
//       formatters FormatDouble/FormatPercent/FormatBytes/FormatJsonDouble)
//       -- never bare `operator<<(double)` or std::to_string(double), whose
//       locale and shortest-round-trip behavior can move golden bytes
//       between toolchains. Pass 1 indexes double-typed names tree-wide so
//       `os << stats.mean_us` is caught without local type information.
//       tests/ is out of scope (gtest failure messages are not golden
//       bytes).
//   R10 Unit hygiene. No raw power-of-two / power-of-ten unit literals
//       (1024, 1048576, 1000000, ...) outside src/common/units.h; no mixing
//       of binary kGiB-family and decimal kGB-family size constants, or
//       *_us and *_days quantities, inside one statement without an explicit
//       units.h conversion helper (BytesTo*, UsToDays, kUsPerDay, ...).
//
// The linter is a token-level analysis (comments/strings stripped, operators
// lexed as single tokens) plus a project-wide two-pass symbol index and a
// lightweight intra-procedural flow pass -- not a full parser: cheap enough
// to run as a ctest test on every build (whole tree in well under a second),
// strict enough that violations need a human-visible annotation rather than
// luck to pass.
//
// Baseline. New rules land strict-on-new-code: pre-existing debt is
// enumerated in tools/soslint/baseline.json (file+line+rule+note, each note
// a human justification) and suppressed at load time; any diagnostic not in
// the baseline fails the build, and any baseline entry that no longer fires
// is itself reported (R5) so the file can only shrink.

#ifndef SOS_TOOLS_SOSLINT_SOSLINT_H_
#define SOS_TOOLS_SOSLINT_SOSLINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace sos::lint {

struct SourceFile {
  std::string path;  // repo-relative, '/'-separated (e.g. "src/ftl/ftl.cc")
  std::string content;
};

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;  // "R1".."R10"
  std::string message;

  bool operator==(const Diagnostic& other) const = default;
};

// ---------------------------------------------------------------------------
// Pass 1: the project-wide symbol index. Built once over every file so pass 2
// can reason about declarations it cannot see: a fallible function declared
// in a header, an unordered member iterated in another TU, a double-typed
// struct field streamed three directories away.
// ---------------------------------------------------------------------------

struct FallibleFn {
  std::string file;         // where the signature was first seen
  int line = 0;
  std::string return_type;  // "Status" or "Result"
};

struct SymbolIndex {
  // Names of variables/members declared anywhere with an unordered container
  // type (R1).
  std::set<std::string> unordered_names;
  // Function name -> first-seen signature, for every function returning
  // Status or Result<T> (R7). Keyed by unqualified name: the lint has no
  // overload resolution, which is exactly what makes it cross-TU.
  std::map<std::string, FallibleFn> fallible_fns;
  // Names (variables, members, and functions) declared anywhere with type
  // double/float (R9). Single-character names are skipped as noise.
  std::set<std::string> double_idents;
  // Class/struct names whose body declares a std::mutex /
  // condition_variable / atomic member -- internally synchronized types
  // (R8). Built in a first sub-pass so the second can resolve variables.
  std::set<std::string> synchronized_types;
  // Names of variables/members declared anywhere with a synchronized type.
  // R8 exempts mutating calls through these: the completion-queue hand-off
  // idiom (`pool.Submit([&cq] { cq.Push(...); })`) is safe exactly because
  // the queue locks internally -- the synchronization the rule wants is
  // inside the callee, not at the call site.
  std::set<std::string> sync_idents;
};

SymbolIndex BuildIndex(const std::vector<SourceFile>& files);

// Pass 2: lints one file against all rules, consulting the tree-wide index.
std::vector<Diagnostic> LintFile(const SourceFile& file, const SymbolIndex& index);

// Convenience: both passes over a whole tree; diagnostics sorted by
// (file, line, rule) for deterministic output.
std::vector<Diagnostic> LintTree(const std::vector<SourceFile>& files);

// ---------------------------------------------------------------------------
// Reports.
// ---------------------------------------------------------------------------

// "src/ftl/ftl.cc:479: [R1] ..." -- the format editors and CI understand.
std::string FormatDiagnostic(const Diagnostic& diag);

// Machine-readable report: {"schema":1,"files_scanned":N,"diagnostics":[...]}
// with diagnostics in the same (file, line, rule) order as the text output.
std::string FormatReportJson(const std::vector<Diagnostic>& diags, size_t files_scanned);

// ---------------------------------------------------------------------------
// Baseline: enumerated, justified debt. See the header comment for protocol.
// ---------------------------------------------------------------------------

struct BaselineEntry {
  std::string file;
  int line = 0;
  std::string rule;
  std::string note;  // human justification; mandatory in a reviewed baseline

  bool operator==(const BaselineEntry& other) const = default;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

// Renders diagnostics as a baseline file (notes prefilled for human editing).
std::string WriteBaselineJson(const std::vector<Diagnostic>& diags);

// Parses a baseline file. Returns false and sets *error on malformed input;
// a malformed baseline must fail the lint run, not silently suppress nothing.
bool ParseBaselineJson(const std::string& json, Baseline* out, std::string* error);

// Drops diagnostics matched by a baseline entry (same file, line, and rule).
// Entries that matched nothing come back as R5 diagnostics ("stale baseline
// entry"), so the baseline can only ever shrink.
std::vector<Diagnostic> ApplyBaseline(std::vector<Diagnostic> diags, const Baseline& baseline);

}  // namespace sos::lint

#endif  // SOS_TOOLS_SOSLINT_SOSLINT_H_
