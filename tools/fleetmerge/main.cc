// Copyright (c) 2026 The SOS Authors. MIT License.
//
// fleetmerge: combine bench_fleet shard partials into the fleet aggregate.
//
//   fleetmerge [--metrics-out=FILE] [--report=0|1] PARTIAL...
//
// Reads every partial, validates that together they form a complete shard
// cover of one population (same seed, device count, mix, shard count; every
// shard exactly once), merges them, and prints the same report bench_fleet
// prints for an unsharded run of the whole fleet -- byte-identical, by the
// ledger's integer merge algebra (DESIGN.md §13). Exit codes: 0 ok, 2 bad
// input (unreadable/malformed/incomplete partials), 1 output I/O failure.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/fleet/partial.h"
#include "src/fleet/report.h"
#include "src/obs/metrics.h"

namespace {

constexpr const char* kUsage =
    "usage: fleetmerge [--metrics-out=FILE] [--report=0|1] PARTIAL...\n"
    "  Merges bench_fleet --partial-out shard files into the fleet aggregate.\n"
    "  --metrics-out=FILE  write merged fleet metrics JSON\n"
    "  --report=0|1        print the fleet report (default 1)\n";

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out;
  bool report = true;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else if (arg == "--report=0") {
      report = false;
    } else if (arg == "--report=1") {
      report = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "fleetmerge: unknown flag %s\n%s", arg.c_str(), kUsage);
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "fleetmerge: no partial files given\n%s", kUsage);
    return 2;
  }

  std::vector<sos::fleet::FleetPartial> partials;
  for (const std::string& path : inputs) {
    sos::Result<sos::fleet::FleetPartial> partial = sos::fleet::ReadPartialFile(path);
    if (!partial.ok()) {
      std::fprintf(stderr, "fleetmerge: %s\n", partial.status().ToString().c_str());
      return 2;
    }
    partials.push_back(std::move(partial.value()));
  }
  sos::Result<sos::fleet::FleetPartial> merged =
      sos::fleet::MergePartials(std::move(partials));
  if (!merged.ok()) {
    std::fprintf(stderr, "fleetmerge: %s\n", merged.status().ToString().c_str());
    return 2;
  }

  if (report) {
    std::printf("%s", sos::fleet::FleetReport(merged.value()).c_str());
  }
  if (!metrics_out.empty()) {
    if (sos::Status s =
            sos::obs::WriteFile(metrics_out, sos::fleet::FleetMetricsJson(merged.value()));
        !s.ok()) {
      std::fprintf(stderr, "fleetmerge: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
