// Copyright (c) 2026 The SOS Authors. MIT License.

#include "tools/perfcheck/microbench.h"

#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/ecc/ecc_scheme.h"
#include "src/flash/cell_tech.h"
#include "src/flash/error_model.h"
#include "src/flash/nand_device.h"
#include "src/flash/rber_cache.h"
#include "src/flash/voltage_model.h"
#include "src/ftl/ftl.h"
#include "src/ftl/l2p.h"
#include "src/sos/lifetime_sim.h"

namespace sos::perfcheck {
namespace {

// Inner passes per timing rep for the sub-microsecond benches; keeps one
// rep long enough for the wall timer to resolve. Checksums always fold a
// single pass, so these never leak into the golden.
constexpr uint32_t kPhenoPasses = 30;
constexpr uint32_t kVoltagePasses = 40;

uint64_t FoldDouble(uint64_t acc, double value, double scale) {
  return DeriveSeed({acc, static_cast<uint64_t>(std::llround(value * scale))});
}

// ---------------------------------------------------------------------------
// L2P: identical random op mix through the flat table and the reference map.
// ---------------------------------------------------------------------------

template <typename Table>
uint64_t L2pWorkload(uint64_t* ops) {
  constexpr uint64_t kLbas = 1u << 16;
  constexpr uint64_t kOps = 400000;
  Table table;
  table.Reserve(kLbas);
  Rng rng(DeriveSeed({0x4c325000ull}));
  uint64_t acc = 0x4c325001ull;
  for (uint64_t i = 0; i < kOps; ++i) {
    const uint64_t lba = rng.NextBounded(kLbas);
    const uint64_t action = rng.NextBounded(8);
    if (action < 4) {
      if (auto loc = table.Find(lba)) {
        acc = DeriveSeed({acc, loc->pool, loc->block, loc->page, loc->tainted ? 1u : 0u});
      } else {
        acc = DeriveSeed({acc, 0xdeadull});
      }
    } else if (action < 7) {
      PhysLoc loc;
      loc.pool = static_cast<uint32_t>(lba & 3u);
      loc.block = static_cast<uint32_t>(i & 0xffffffu);
      loc.page = static_cast<uint32_t>((i * 7u) & 0xfffffu);
      loc.tainted = (i & 31u) == 0;
      table.Set(lba, loc);
    } else {
      acc = DeriveSeed({acc, table.Erase(lba) ? 1u : 0u});
    }
  }
  acc = DeriveSeed({acc, table.mapped()});
  table.ForEachMapped([&acc](uint64_t l, const PhysLoc& loc) {
    acc = DeriveSeed({acc, l, loc.block, loc.page});
  });
  *ops += kOps;
  return acc;
}

// ---------------------------------------------------------------------------
// RBER: full wear x retention x disturb x retry grid through one RberCache.
// The cache is shared across checksum and timing calls (see AllBenches), so
// timing measures the warm inner-loop cost the lifetime sim actually pays;
// memo values are pure functions of the inputs, so warm state never changes
// the checksum.
// ---------------------------------------------------------------------------

uint64_t PhenoWorkload(const RberCache& cache, uint32_t passes, uint64_t* ops) {
  static constexpr double kTs[] = {0.0, 1e-5, 1e-3, 0.01, 0.1, 0.5, 1.0, 2.0, 5.0};
  static constexpr uint32_t kReads[] = {0, 1000, 100000};
  static constexpr int kRetries[] = {0, 2};
  static constexpr CellTech kModes[] = {CellTech::kQlc, CellTech::kPlc};
  uint64_t acc = 0x52424552ull;
  for (uint32_t pass = 0; pass < passes; ++pass) {
    for (CellTech mode : kModes) {
      const CellTechInfo& info = GetCellTechInfo(mode);
      const double endurance = static_cast<double>(info.rated_endurance_pec) *
                               PseudoModeEnduranceBonus(CellTech::kPlc, mode);
      for (uint32_t i = 0; i < 32; ++i) {
        const uint32_t pec =
            static_cast<uint32_t>(endurance * 1.5 * static_cast<double>(i) / 31.0);
        for (double t : kTs) {
          for (uint32_t reads : kReads) {
            for (int retry : kRetries) {
              PageErrorState state;
              state.mode = mode;
              state.endurance_pec = endurance;
              state.pec_at_program = pec;
              state.retention_years = t;
              state.reads_since_program = reads;
              acc = FoldDouble(acc, cache.Rber(state, retry), 1e15);
              ++*ops;
            }
          }
        }
      }
    }
  }
  return acc;
}

uint64_t VoltageWorkload(const RberCache& cache, uint32_t passes, uint64_t* ops) {
  static constexpr double kTs[] = {0.0, 0.01, 0.1, 1.0, 3.0, 10.0};
  static constexpr uint32_t kReads[] = {0, 5000};
  static constexpr int kRetries[] = {0, 1};
  static constexpr CellTech kModes[] = {CellTech::kQlc, CellTech::kPlc};
  uint64_t acc = 0x564f4c54ull;
  for (uint32_t pass = 0; pass < passes; ++pass) {
    for (CellTech mode : kModes) {
      const CellTechInfo& info = GetCellTechInfo(mode);
      const double endurance = static_cast<double>(info.rated_endurance_pec) *
                               PseudoModeEnduranceBonus(CellTech::kPlc, mode);
      for (uint32_t i = 0; i < 10; ++i) {
        const uint32_t pec =
            static_cast<uint32_t>(endurance * 1.6 * static_cast<double>(i) / 9.0);
        for (double t : kTs) {
          for (uint32_t reads : kReads) {
            for (int retry : kRetries) {
              PageErrorState state;
              state.mode = mode;
              state.endurance_pec = endurance;
              state.pec_at_program = pec;
              state.retention_years = t;
              state.reads_since_program = reads;
              acc = FoldDouble(acc, cache.Rber(state, retry), 1e15);
              ++*ops;
            }
          }
        }
      }
    }
  }
  return acc;
}

// ---------------------------------------------------------------------------
// ECC: page decodes across the raw-error range of both strong presets.
// ---------------------------------------------------------------------------

uint64_t EccWorkload(uint32_t passes, uint64_t* ops) {
  const EccScheme ldpc = EccScheme::FromPreset(EccPreset::kLdpc);
  const EccScheme bch = EccScheme::FromPreset(EccPreset::kBch);
  uint64_t acc = 0x45434331ull;
  for (uint32_t pass = 0; pass < passes; ++pass) {
    Rng rng(DeriveSeed({0x45434332ull, pass}));
    for (uint32_t i = 0; i < 10000; ++i) {
      const EccScheme& scheme = (i & 1u) ? bch : ldpc;
      const uint64_t raw = rng.NextBounded(700);
      const DecodeOutcome out =
          DecodePage(scheme, 4096, raw, DeriveSeed({0x45434333ull, pass, i}));
      acc = DeriveSeed({acc, out.corrected ? 1u : 0u, out.residual_errors, out.failed_codewords});
      ++*ops;
    }
  }
  return acc;
}

// Same decode grid as EccWorkload but a single preset per bench, so the
// ROADMAP item-2 decode-path work has a per-preset baseline to move against
// (the mixed bench hides which scheme a regression or win lands in).
uint64_t EccPresetWorkload(EccPreset preset, uint64_t tag, uint64_t* ops) {
  const EccScheme scheme = EccScheme::FromPreset(preset);
  uint64_t acc = tag;
  Rng rng(DeriveSeed({tag, 0x45434334ull}));
  for (uint32_t i = 0; i < 10000; ++i) {
    const uint64_t raw = rng.NextBounded(700);
    const DecodeOutcome out = DecodePage(scheme, 4096, raw, DeriveSeed({tag, 0x45434335ull, i}));
    acc = DeriveSeed({acc, out.corrected ? 1u : 0u, out.residual_errors, out.failed_codewords});
    ++*ops;
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Bit flips: sample an error count for a worn pseudo-QLC page, then flip
// that many distinct bits of a 4 KiB payload. This is the payload-corruption
// path NandDevice::Read pays on every stored-payload read; the distinct-bit
// rejection set inside InjectErrors is the suspected hot spot. The payload
// carries flips across iterations (InjectErrors is content-oblivious), so
// timing measures only sample + inject; the checksum folds the final page.
// ---------------------------------------------------------------------------

uint64_t BitFlipWorkload(uint64_t* ops) {
  constexpr uint64_t kPageBytes = 4096;
  std::vector<uint8_t> page(kPageBytes);
  for (uint64_t j = 0; j < kPageBytes; ++j) {
    page[j] = static_cast<uint8_t>((j * 17u) & 0xffu);
  }
  const uint32_t endurance = GetCellTechInfo(CellTech::kQlc).rated_endurance_pec;
  uint64_t acc = 0x464c4950ull;
  for (uint32_t i = 0; i < 4000; ++i) {
    PageErrorState state;
    state.mode = CellTech::kQlc;
    state.endurance_pec = static_cast<double>(endurance);
    state.pec_at_program = (i * 97u) % (endurance + endurance / 2);
    state.retention_years = 0.25 * static_cast<double>(i % 16);
    state.reads_since_program = (i % 8) * 20000u;
    const uint64_t seed = DeriveSeed({0x464c4951ull, i});
    const uint64_t count = ErrorModel::SampleErrorCount(state, kPageBytes * 8, seed);
    acc = DeriveSeed({acc, count, ErrorModel::InjectErrors(page, count, seed)});
    ++*ops;
  }
  uint64_t h = 1469598103934665603ull;  // FNV-1a over the accumulated corruption
  for (uint8_t b : page) {
    h = (h ^ b) * 1099511628211ull;
  }
  return DeriveSeed({acc, h});
}

// ---------------------------------------------------------------------------
// NAND: program one block, read it back three times -- once through the
// per-page loop, once through the batched run entry points. The two benches
// fold identical observables in identical order, so their checksums must be
// equal (ReadRun/ProgramRun are serial-equivalent by contract).
// ---------------------------------------------------------------------------

uint64_t FoldRead(uint64_t acc, const Result<ReadResult>& r) {
  if (!r.ok()) {
    return DeriveSeed({acc, static_cast<uint64_t>(r.status().code())});
  }
  const ReadResult& rr = r.value();
  uint64_t h = 1469598103934665603ull;  // FNV-1a over the corrupted payload
  for (uint8_t b : rr.data) {
    h = (h ^ b) * 1099511628211ull;
  }
  return DeriveSeed({acc, rr.bit_errors, static_cast<uint64_t>(std::llround(rr.rber * 1e15)),
                     rr.latency_us, h});
}

uint64_t NandReadWorkload(bool batched, uint64_t* ops) {
  SimClock clock;
  NandConfig cfg;
  cfg.num_blocks = 4;
  cfg.wordlines_per_block = 64;
  cfg.page_size_bytes = 2048;
  cfg.tech = CellTech::kTlc;
  cfg.seed = 11;
  cfg.store_payloads = true;
  NandDevice dev(cfg, &clock);
  const uint32_t pages = cfg.PagesPerBlock(CellTech::kTlc);
  std::vector<std::vector<uint8_t>> payloads(pages);
  std::vector<PageOob> oobs(pages);
  for (uint32_t p = 0; p < pages; ++p) {
    payloads[p].resize(cfg.page_size_bytes);
    for (uint32_t j = 0; j < cfg.page_size_bytes; ++j) {
      payloads[p][j] = static_cast<uint8_t>((p * 131u + j * 17u) & 0xffu);
    }
    oobs[p].lba = p;
    oobs[p].seq = p;
  }
  if (batched) {
    if (Status s = dev.ProgramRun(0, payloads, oobs); !s.ok()) {
      return DeriveSeed({0xbadull, static_cast<uint64_t>(s.code())});
    }
  } else {
    for (uint32_t p = 0; p < pages; ++p) {
      if (Status s = dev.Program({0, p}, payloads[p], &oobs[p]); !s.ok()) {
        return DeriveSeed({0xbadull, static_cast<uint64_t>(s.code())});
      }
    }
  }
  // Fold the same post-program observable for both paths (not the per-call
  // Status stream, whose shape differs between one run and `pages` calls).
  uint64_t acc = DeriveSeed({0x4e414e44ull, dev.block_info(0).programmed_pages});
  for (uint32_t pass = 0; pass < 3; ++pass) {
    if (batched) {
      for (const auto& r : dev.ReadRun(0, 0, pages)) {
        acc = FoldRead(acc, r);
      }
    } else {
      for (uint32_t p = 0; p < pages; ++p) {
        acc = FoldRead(acc, dev.Read({0, p}));
      }
    }
    *ops += pages;
  }
  return DeriveSeed({acc, dev.stats().reads, dev.stats().bit_errors_injected, clock.now()});
}

// ---------------------------------------------------------------------------
// GC churn: a small single-pool FTL driven to steady-state garbage
// collection by uniform overwrites at 75% utilization. The batched variant
// runs the two-phase evacuation schedule, which is deterministic but
// intentionally different from the serial one -- it gets its own golden.
// ---------------------------------------------------------------------------

uint64_t GcChurnWorkload(bool batched, uint64_t* ops) {
  SimClock clock;
  FtlConfig cfg;
  cfg.nand.num_blocks = 48;
  cfg.nand.wordlines_per_block = 32;
  cfg.nand.page_size_bytes = 512;
  cfg.nand.tech = CellTech::kTlc;
  cfg.nand.seed = 7;
  cfg.nand.store_payloads = false;
  cfg.batched_relocation = batched;
  FtlPoolConfig pool;
  pool.name = "MAIN";
  pool.mode = CellTech::kTlc;
  pool.ecc = EccScheme::FromPreset(EccPreset::kBch);
  pool.share = 1.0;
  pool.wear_leveling = true;
  pool.parity_stripe = 8;
  pool.read_retries = 1;
  cfg.pools = {pool};
  Ftl ftl(cfg, &clock);
  const uint64_t lbas = ftl.ExportedPages() * 3 / 4;
  const uint64_t writes = lbas * 6;
  uint64_t acc = DeriveSeed({0x47435052ull, batched ? 1u : 0u});
  Rng rng(DeriveSeed({0x47435053ull}));
  for (uint64_t i = 0; i < writes; ++i) {
    const uint64_t lba = rng.NextBounded(lbas);
    acc = DeriveSeed({acc, static_cast<uint64_t>(ftl.Write(lba, {}, 0).code())});
    if ((i & 1023u) == 0) {
      acc = DeriveSeed({acc, clock.now()});
    }
  }
  const FtlStats st = ftl.stats();
  acc = DeriveSeed({acc, st.host_writes(), st.nand_writes(), st.parity_writes(),
                    st.gc_relocations(), st.wl_relocations(), st.gc_erases(), st.retired_blocks(),
                    st.ecc_failures(), st.degraded_reads(), st.lost_pages()});
  acc = DeriveSeed(
      {acc, clock.now(), ftl.ExportedPages(), ftl.CheckInvariants().ok() ? 1u : 0u});
  *ops += writes;
  return acc;
}

// ---------------------------------------------------------------------------
// End-to-end: a short SOS lifetime simulation, ops = FTL page operations.
// ---------------------------------------------------------------------------

uint64_t LifetimeWorkload(uint64_t* ops) {
  LifetimeSimConfig config;
  config.kind = DeviceKind::kSos;
  config.seed = 5;
  config.days = 20;
  config.nand.num_blocks = 96;
  config.training_files = 500;
  config.workload.photos_per_day = 2.0;
  config.workload.cache_files_per_day = 6.0;
  config.workload.reads_per_day = 30.0;
  config.workload.app_updates_per_day = 40.0;
  config.file_size_cap = 16 * kKiB;
  config.sample_period_days = 10;
  LifetimeSim sim(config);
  const LifetimeResult result = sim.Run();
  const FtlStats& st = result.ftl();
  uint64_t acc =
      DeriveSeed({0x4c494645ull, result.host_bytes_written(), result.create_failures(),
                  result.final_exported_pages(), result.initial_exported_pages(),
                  result.files_alive()});
  acc = DeriveSeed({acc, st.host_writes(), st.nand_writes(), st.parity_writes(),
                    st.gc_relocations(), st.wl_relocations(), st.migrations(), st.refreshes(),
                    st.gc_erases(), st.retired_blocks(), st.resuscitated_blocks(),
                    st.ecc_failures(), st.degraded_reads(), st.lost_pages()});
  acc = FoldDouble(acc, result.final_max_wear_ratio(), 1e12);
  acc = FoldDouble(acc, result.final_spare_quality(), 1e12);
  *ops += st.host_writes() + st.nand_writes() + st.gc_relocations();
  return acc;
}

MicroBench Repeated(std::string name, std::function<uint64_t(uint64_t*)> workload) {
  MicroBench bench;
  bench.name = std::move(name);
  bench.checksum = [workload] {
    uint64_t ops = 0;
    return workload(&ops);
  };
  bench.run = [workload](uint64_t reps) {
    uint64_t ops = 0;
    for (uint64_t r = 0; r < reps; ++r) {
      (void)workload(&ops);
    }
    return ops;
  };
  return bench;
}

MicroBench CachedRber(std::string name, ErrorModelKind kind, bool memo,
                      uint64_t (*workload)(const RberCache&, uint32_t, uint64_t*),
                      uint32_t passes) {
  // One cache per bench, shared between checksum and timing: timing then
  // measures the warm per-eval cost (the memo's one-time table build is paid
  // by the checksum pass, just as a real run amortizes it over millions of
  // reads). Values are pure functions of the inputs, so sharing cannot
  // change the checksum.
  auto cache = std::make_shared<RberCache>(kind, memo);
  MicroBench bench;
  bench.name = std::move(name);
  bench.checksum = [cache, workload] {
    uint64_t ops = 0;
    return workload(*cache, 1, &ops);
  };
  bench.run = [cache, workload, passes](uint64_t reps) {
    uint64_t ops = 0;
    for (uint64_t r = 0; r < reps; ++r) {
      (void)workload(*cache, passes, &ops);
    }
    return ops;
  };
  return bench;
}

}  // namespace

std::vector<MicroBench> AllBenches() {
  std::vector<MicroBench> benches;
  benches.push_back(Repeated("l2p_flat", [](uint64_t* ops) { return L2pWorkload<L2pTable>(ops); }));
  benches.push_back(
      Repeated("l2p_map", [](uint64_t* ops) { return L2pWorkload<ReferenceL2pMap>(ops); }));
  benches.push_back(CachedRber("rber_exact", ErrorModelKind::kPhenomenological, false,
                               &PhenoWorkload, kPhenoPasses));
  benches.push_back(CachedRber("rber_memo", ErrorModelKind::kPhenomenological, true,
                               &PhenoWorkload, kPhenoPasses));
  benches.push_back(CachedRber("rber_voltage_exact", ErrorModelKind::kVoltage, false,
                               &VoltageWorkload, kVoltagePasses));
  benches.push_back(CachedRber("rber_voltage_memo", ErrorModelKind::kVoltage, true,
                               &VoltageWorkload, kVoltagePasses));
  benches.push_back(Repeated("ecc_decode", [](uint64_t* ops) { return EccWorkload(1, ops); }));
  benches.push_back(
      Repeated("nand_read_serial", [](uint64_t* ops) { return NandReadWorkload(false, ops); }));
  benches.push_back(
      Repeated("nand_read_batched", [](uint64_t* ops) { return NandReadWorkload(true, ops); }));
  benches.push_back(
      Repeated("gc_churn", [](uint64_t* ops) { return GcChurnWorkload(false, ops); }));
  benches.push_back(
      Repeated("gc_churn_batched", [](uint64_t* ops) { return GcChurnWorkload(true, ops); }));
  benches.push_back(Repeated("lifetime_ops", [](uint64_t* ops) { return LifetimeWorkload(ops); }));
  // Appended after the PR-9 fleet work; keep new benches below this line so
  // the golden entries above never reorder.
  benches.push_back(Repeated("ecc_decode_ldpc", [](uint64_t* ops) {
    return EccPresetWorkload(EccPreset::kLdpc, 0x4c445043ull, ops);
  }));
  benches.push_back(Repeated("ecc_decode_bch", [](uint64_t* ops) {
    return EccPresetWorkload(EccPreset::kBch, 0x42434831ull, ops);
  }));
  benches.push_back(
      Repeated("bit_flip_apply", [](uint64_t* ops) { return BitFlipWorkload(ops); }));
  return benches;
}

std::vector<EqualPair> MustMatch() {
  return {{"l2p_flat", "l2p_map"}, {"nand_read_serial", "nand_read_batched"}};
}

std::vector<SpeedupPair> Speedups() {
  return {{"l2p", "l2p_map", "l2p_flat"},
          {"rber", "rber_exact", "rber_memo"},
          {"rber_voltage", "rber_voltage_exact", "rber_voltage_memo"}};
}

}  // namespace sos::perfcheck
