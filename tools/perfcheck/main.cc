// Copyright (c) 2026 The SOS Authors. MIT License.
//
// perfcheck: the hot-path performance and behaviour regression gate.
//
//   perfcheck [--time-reps=N] [--out=BENCH_micro.json]
//             [--golden=tests/golden/BENCH_micro_checksums.json]
//             [--update-golden=1]
//
// Runs every inner-loop microbench (tools/perfcheck/microbench.h), writes
// BENCH_micro.json {ops, ns/op, ops/s, workload checksum} plus the
// baseline-vs-optimized speedup ratios, and exits non-zero when
//   - any workload checksum differs from the committed golden (simulated
//     behaviour drifted), or
//   - an implementation pair (flat L2P vs reference map, batched vs serial
//     NAND reads) stops producing identical checksums.
// Timing numbers are reported, never gated. CI runs this as a ctest and
// uploads BENCH_micro.json as an artifact; see DESIGN.md §11.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/metrics.h"
#include "tools/perfcheck/microbench.h"

namespace sos::perfcheck {
namespace {

struct BenchRow {
  std::string name;
  uint64_t checksum = 0;
  uint64_t ops = 0;
  double seconds = 0.0;

  double NsPerOp() const {
    return ops > 0 ? seconds * 1e9 / static_cast<double>(ops) : 0.0;
  }
  double OpsPerS() const {
    return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
  }
};

std::string Hex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

const BenchRow* FindRow(const std::vector<BenchRow>& rows, const std::string& name) {
  for (const BenchRow& row : rows) {
    if (row.name == name) {
      return &row;
    }
  }
  return nullptr;
}

// Canonical golden-file content: checksums only, in bench order. Golden
// comparison is a byte compare against this exact rendering.
std::string GoldenJson(const std::vector<BenchRow>& rows) {
  std::string out = "{\n  \"schema\": 1,\n  \"checksums\": {\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    out += "    \"" + rows[i].name + "\": \"" + Hex(rows[i].checksum) + "\"";
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  return out;
}

std::string ReportJson(const std::vector<BenchRow>& rows, size_t time_reps) {
  std::string out = "{\n  \"schema\": 1,\n";
  out += "  \"time_reps\": " + std::to_string(time_reps) + ",\n";
  out += "  \"benches\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    out += "    {\"name\": \"" + row.name + "\", \"ops\": " + std::to_string(row.ops) +
           ", \"ns_per_op\": " + FormatDouble(row.NsPerOp(), 2) +
           ", \"ops_per_s\": " + FormatDouble(row.OpsPerS(), 0) + ", \"checksum\": \"" +
           Hex(row.checksum) + "\"}";
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"speedups\": {\n";
  const std::vector<SpeedupPair> pairs = Speedups();
  for (size_t i = 0; i < pairs.size(); ++i) {
    const BenchRow* base = FindRow(rows, pairs[i].baseline);
    const BenchRow* fast = FindRow(rows, pairs[i].fast);
    const double ratio =
        (base != nullptr && fast != nullptr && fast->NsPerOp() > 0.0)
            ? base->NsPerOp() / fast->NsPerOp()
            : 0.0;
    out += "    \"" + pairs[i].label + "\": " + FormatDouble(ratio, 2);
    out += i + 1 < pairs.size() ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  return out;
}

std::optional<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int Run(int argc, char** argv) {
  FlagSet flags("perfcheck",
                "Inner-loop microbenches with golden workload checksums (DESIGN.md §11)");
  std::string* out_path = flags.Path("out", "write BENCH_micro.json here (default BENCH_micro.json)");
  std::string* golden_path = flags.Path("golden", "golden checksum file to compare against");
  size_t* update_golden = flags.Size("update-golden", 0, "1 = rewrite --golden from this run");
  size_t* time_reps = flags.Size("time-reps", 3, "timing repetitions per bench");
  flags.ParseOrDie(argc, argv);

  std::vector<MicroBench> benches = AllBenches();
  std::vector<BenchRow> rows;
  rows.reserve(benches.size());
  std::printf("perfcheck: %zu benches, %zu timing rep(s)\n\n", benches.size(), *time_reps);
  std::printf("%-20s %14s %12s %16s  %s\n", "bench", "ops", "ns/op", "ops/s", "checksum");
  for (MicroBench& bench : benches) {
    BenchRow row;
    row.name = bench.name;
    row.checksum = bench.checksum();
    WallTimer timer;
    row.ops = bench.run(*time_reps);
    row.seconds = timer.Seconds();
    std::printf("%-20s %14llu %12.2f %16.0f  %s\n", row.name.c_str(),
                static_cast<unsigned long long>(row.ops), row.NsPerOp(), row.OpsPerS(),
                Hex(row.checksum).c_str());
    rows.push_back(row);
  }

  int failures = 0;
  for (const EqualPair& pair : MustMatch()) {
    const BenchRow* a = FindRow(rows, pair.a);
    const BenchRow* b = FindRow(rows, pair.b);
    if (a == nullptr || b == nullptr || a->checksum != b->checksum) {
      std::fprintf(stderr,
                   "FAIL: %s and %s ran the same simulated workload but their checksums "
                   "differ (%s vs %s) -- the implementations are no longer equivalent\n",
                   pair.a.c_str(), pair.b.c_str(), a != nullptr ? Hex(a->checksum).c_str() : "?",
                   b != nullptr ? Hex(b->checksum).c_str() : "?");
      ++failures;
    }
  }

  std::printf("\nspeedups (baseline ns/op / optimized ns/op):\n");
  for (const SpeedupPair& pair : Speedups()) {
    const BenchRow* base = FindRow(rows, pair.baseline);
    const BenchRow* fast = FindRow(rows, pair.fast);
    if (base != nullptr && fast != nullptr && fast->NsPerOp() > 0.0) {
      std::printf("  %-14s %6.2fx  (%s %.2f ns/op -> %s %.2f ns/op)\n", pair.label.c_str(),
                  base->NsPerOp() / fast->NsPerOp(), pair.baseline.c_str(), base->NsPerOp(),
                  pair.fast.c_str(), fast->NsPerOp());
    }
  }

  const std::string report_path = out_path->empty() ? "BENCH_micro.json" : *out_path;
  if (Status s = obs::WriteFile(report_path, ReportJson(rows, *time_reps)); !s.ok()) {
    std::fprintf(stderr, "FAIL: writing %s: %s\n", report_path.c_str(), s.ToString().c_str());
    ++failures;
  } else {
    std::printf("\nwrote %s\n", report_path.c_str());
  }

  const std::string golden = GoldenJson(rows);
  if (*update_golden != 0) {
    if (golden_path->empty()) {
      std::fprintf(stderr, "FAIL: --update-golden requires --golden=<path>\n");
      ++failures;
    } else if (Status s = obs::WriteFile(*golden_path, golden); !s.ok()) {
      std::fprintf(stderr, "FAIL: writing %s: %s\n", golden_path->c_str(), s.ToString().c_str());
      ++failures;
    } else {
      std::printf("updated golden %s\n", golden_path->c_str());
    }
  } else if (!golden_path->empty()) {
    const std::optional<std::string> committed = ReadFileToString(*golden_path);
    if (!committed.has_value()) {
      std::fprintf(stderr, "FAIL: cannot read golden %s\n", golden_path->c_str());
      ++failures;
    } else if (*committed != golden) {
      std::fprintf(stderr,
                   "FAIL: workload checksums drifted from %s -- simulated behaviour changed.\n"
                   "If the change is intentional and understood, regenerate with "
                   "--update-golden=1 and explain the drift in the commit.\n--- committed "
                   "---\n%s--- this run ---\n%s",
                   golden_path->c_str(), committed->c_str(), golden.c_str());
      ++failures;
    } else {
      std::printf("golden checksums match %s\n", golden_path->c_str());
    }
  }

  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sos::perfcheck

int main(int argc, char** argv) { return sos::perfcheck::Run(argc, argv); }
