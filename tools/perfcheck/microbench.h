// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Inner-loop microbenchmarks for the hot-path regression gate.
//
// Each MicroBench pairs a *timed* workload with a *checksum* of everything
// the workload simulates. The checksum is the gate: it folds every observable
// value the workload produces (statuses, error counts, RBER samples, clock
// readings, stats counters) through DeriveSeed, so any change to simulated
// behaviour -- a reordered NAND op, a different error sample, a stats drift
// -- changes the checksum. Checksums are compared against the committed
// golden (tests/golden/BENCH_micro_checksums.json); timing numbers are
// reported but never gated (they vary by machine).
//
// Pairs of benches that run the same simulated workload through two
// implementations (flat L2P vs. the reference map; batched NAND reads vs.
// the serial loop) must produce *equal* checksums -- that equality is
// asserted on every run, making perfcheck an equivalence check as well as a
// perf probe. See DESIGN.md §11 for how to read BENCH_micro.json.

#ifndef SOS_TOOLS_PERFCHECK_MICROBENCH_H_
#define SOS_TOOLS_PERFCHECK_MICROBENCH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sos::perfcheck {

struct MicroBench {
  std::string name;
  // Runs the canonical workload once from fresh state and returns its fold
  // checksum. Deterministic and iteration-count independent: equal bytes on
  // every invocation, on every machine.
  std::function<uint64_t()> checksum;
  // Runs `reps` repetitions of the canonical workload (fresh state each rep)
  // and returns the total number of operations performed, for ns/op math.
  std::function<uint64_t(uint64_t reps)> run;
};

// The full bench list, in canonical (golden-file) order.
std::vector<MicroBench> AllBenches();

// Bench pairs that push the same simulated workload through two
// implementations; their checksums must match exactly or perfcheck fails.
struct EqualPair {
  std::string a;
  std::string b;
};
std::vector<EqualPair> MustMatch();

// Speedup pairs reported in BENCH_micro.json: ns/op(baseline) / ns/op(fast).
struct SpeedupPair {
  std::string label;
  std::string baseline;
  std::string fast;
};
std::vector<SpeedupPair> Speedups();

}  // namespace sos::perfcheck

#endif  // SOS_TOOLS_PERFCHECK_MICROBENCH_H_
