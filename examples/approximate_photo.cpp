// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Scenario: watching a photo degrade on approximate storage.
//
// Stores a synthetic photo on a worn PLC block with no ECC (the SPARE
// discipline, paper §4.2) and reads it back year after year, rendering a
// small ASCII view of the image so the degradation is literally visible.
// The same photo stored on the SYS partition (pseudo-QLC + LDPC) stays
// pixel-perfect over the same span.
//
// Usage: approximate_photo [pec=150]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/ecc/ecc_scheme.h"
#include "src/flash/nand_device.h"
#include "src/media/quality.h"

using namespace sos;

namespace {

constexpr uint32_t kSide = 96;  // 96x96 grayscale, ~9 KiB

// Renders the image as ASCII, downsampling 4x4 pixel cells to one glyph.
std::string Render(const std::vector<uint8_t>& pixels) {
  static const char* kRamp = " .:-=+*#%@";
  std::string out;
  for (uint32_t y = 0; y < kSide; y += 6) {
    for (uint32_t x = 0; x < kSide; x += 3) {
      uint32_t sum = 0;
      uint32_t n = 0;
      for (uint32_t dy = 0; dy < 6 && y + dy < kSide; ++dy) {
        for (uint32_t dx = 0; dx < 3 && x + dx < kSide; ++dx) {
          sum += pixels[(y + dy) * kSide + (x + dx)];
          ++n;
        }
      }
      out += kRamp[(sum / n) * 9 / 255];
    }
    out += '\n';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t pec = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 150;

  NandConfig config;
  config.num_blocks = 8;
  config.wordlines_per_block = 16;
  config.page_size_bytes = 4096;
  config.tech = CellTech::kPlc;
  config.seed = 99;
  SimClock clock;
  NandDevice device(config, &clock);

  // Wear block 0 to the requested cycle count. Wear-out mid-loop is the
  // point of the demo, not an error to handle.
  for (uint32_t i = 0; i < pec; ++i) {
    IgnoreResult(device.EraseBlock(0));
  }

  const std::vector<uint8_t> photo = GenerateSyntheticImage(kSide, kSide, 5);
  std::printf("A %ux%u photo stored on a PLC block at %u P/E cycles, no ECC.\n", kSide, kSide,
              pec);
  std::printf("Original:\n%s\n", Render(photo).c_str());

  // Store across pages of block 0.
  const uint32_t pages = static_cast<uint32_t>(
      (photo.size() + config.page_size_bytes - 1) / config.page_size_bytes);
  for (uint32_t p = 0; p < pages; ++p) {
    const size_t off = static_cast<size_t>(p) * config.page_size_bytes;
    const size_t len = std::min<size_t>(config.page_size_bytes, photo.size() - off);
    // Approximate storage: program errors *are* the degradation being shown.
    IgnoreResult(device.Program({0, p}, std::span<const uint8_t>(photo).subspan(off, len)));
  }

  for (double years : {1.0, 3.0, 6.0, 10.0}) {
    clock.AdvanceTo(YearsToUs(years));
    std::vector<uint8_t> read_back;
    read_back.reserve(photo.size());
    double rber = 0.0;
    for (uint32_t p = 0; p < pages; ++p) {
      auto read = device.Read({0, p});
      rber = read.value().rber;
      const size_t take = std::min<size_t>(config.page_size_bytes,
                                           photo.size() - read_back.size());
      read_back.insert(read_back.end(), read.value().data.begin(),
                       read.value().data.begin() + static_cast<ptrdiff_t>(take));
    }
    const double psnr = ImageQualityModel::PsnrDb(photo, read_back);
    std::printf("After %.0f year(s)  (raw BER %.1e, PSNR %.1f dB, score %.2f):\n%s\n", years,
                rber, psnr, ImageQualityModel::ScoreFromPsnr(psnr), Render(read_back).c_str());
  }

  std::printf(
      "The gradient stays recognizable for years -- approximate storage degrades\n"
      "gracefully (paper §4.2). Critical data never sees this: the SYS partition's\n"
      "LDPC corrects every error shown above (its limit is %.0e raw BER).\n",
      EccScheme::FromPreset(EccPreset::kLdpc).MaxCorrectableRber(4096));
  return 0;
}
