// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Scenario: a phone's whole life.
//
// Simulates N years of personal-device usage on a chosen device build and
// prints a yearly health report: wear, capacity, free space, data quality,
// and what the SOS daemons did. This is the workload the paper's motivation
// section is about -- media-heavy, read-dominant, replaced long before the
// flash wears out.
//
// Usage: mobile_lifetime [years=3] [device=sos|tlc|qlc|plc] [intensity=1.0]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/table.h"
#include "src/sos/lifetime_sim.h"

using namespace sos;

int main(int argc, char** argv) {
  const double years = argc > 1 ? std::atof(argv[1]) : 3.0;
  const char* device_name = argc > 2 ? argv[2] : "sos";
  const double intensity = argc > 3 ? std::atof(argv[3]) : 1.0;

  DeviceKind kind = DeviceKind::kSos;
  if (std::strcmp(device_name, "tlc") == 0) {
    kind = DeviceKind::kTlcBaseline;
  } else if (std::strcmp(device_name, "qlc") == 0) {
    kind = DeviceKind::kQlcBaseline;
  } else if (std::strcmp(device_name, "plc") == 0) {
    kind = DeviceKind::kPlcNaive;
  } else if (std::strcmp(device_name, "sos") != 0) {
    std::fprintf(stderr, "usage: %s [years] [sos|tlc|qlc|plc] [intensity]\n", argv[0]);
    return 1;
  }

  LifetimeSimConfig config;
  config.kind = kind;
  config.days = static_cast<uint32_t>(years * 365.0);
  config.seed = 1;
  config.nand.num_blocks = 256;
  config.workload.photos_per_day = 1.0;
  config.workload.cache_files_per_day = 6.0;
  config.workload.deletes_per_day = 5.0;
  config.workload.intensity = intensity;
  config.file_size_cap = 32 * kKiB;
  config.sample_period_days = 91;  // quarterly checkups

  std::printf("Simulating %.1f years on a %s at %.1fx intensity (scaled geometry: %s)...\n\n",
              years, DeviceKindName(kind), intensity,
              FormatBytes(config.nand.DieBytes(config.nand.tech)).c_str());

  LifetimeSim sim(config);
  const LifetimeResult result = sim.Run();

  TextTable table({"quarter", "files", "fs free", "max wear", "capacity (pages)",
                   "SPARE quality"});
  for (const DaySample& s : result.samples()) {
    table.AddRow({"Q" + std::to_string(s.day / 91), FormatCount(s.live_files),
                  FormatPercent(s.fs_free_fraction), FormatPercent(s.max_wear_ratio),
                  FormatCount(s.exported_pages), FormatDouble(s.spare_quality, 3)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("Final report after %.1f years:\n", years);
  std::printf("  data written           : %s (WA %.2f)\n",
              FormatBytes(result.host_bytes_written()).c_str(),
              result.ftl().WriteAmplification());
  std::printf("  endurance consumed     : %s of the worst block\n",
              FormatPercent(result.final_max_wear_ratio()).c_str());
  std::printf("  projected flash life   : %.1f years (%.1fx the device's %0.1f-year life)\n",
              result.projected_lifetime_years(), result.projected_lifetime_years() / years, years);
  std::printf("  capacity variance      : %s -> %s pages\n",
              FormatCount(result.initial_exported_pages()).c_str(),
              FormatCount(result.final_exported_pages()).c_str());
  std::printf("  files alive / rejected : %s / %s\n",
              FormatCount(result.files_alive()).c_str(),
              FormatCount(result.create_failures()).c_str());
  if (kind == DeviceKind::kSos) {
    std::printf("  daemon activity        : %llu demotions, %llu promotions, "
                "%llu auto-deletes, %llu scrub refreshes\n",
                static_cast<unsigned long long>(result.migration().demoted),
                static_cast<unsigned long long>(result.migration().promoted),
                static_cast<unsigned long long>(result.autodelete().files_deleted),
                static_cast<unsigned long long>(result.monitor().pages_refreshed));
    std::printf("  SPARE media quality    : %.3f (1.0 = pristine)\n",
                result.final_spare_quality());
  }
  return 0;
}
