// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Quickstart: the whole SOS stack in one file.
//
// Builds a small Sustainability-Oriented Storage device (paper Figure 2),
// mounts the extent file system on it, trains the file classifier on a
// synthetic corpus, stores a precious photo / a junk video / app state,
// lets the migration daemon sort them between the reliable (SYS) and
// approximate (SPARE) partitions, then fast-forwards two years to show
// selective degradation: the junk video degrades slightly, the precious
// photo and the app database stay bit-perfect.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "src/classify/corpus.h"
#include "src/common/table.h"
#include "src/classify/logistic.h"
#include "src/host/file_system.h"
#include "src/media/quality.h"
#include "src/sos/daemons.h"
#include "src/sos/sos_device.h"
#include "src/sos/health.h"
#include "src/sos/ufs.h"

using namespace sos;

int main() {
  // --- 1. A PLC die managed as an SOS device -------------------------------
  SosDeviceConfig device_config;
  device_config.nand.num_blocks = 64;
  device_config.nand.wordlines_per_block = 16;
  device_config.nand.page_size_bytes = 4096;
  device_config.nand.tech = CellTech::kPlc;  // densest cells, least endurance
  device_config.nand.store_payloads = true;  // keep real bytes: we want to *see* degradation
  SimClock clock;
  SosDevice device(device_config, &clock);

  std::printf("SOS device: %s capacity from a PLC die\n",
              FormatBytes(device.capacity_blocks() * device.block_size()).c_str());
  std::printf("  SYS pool   : %u blocks of pseudo-QLC, LDPC + parity stripes\n",
              device.SysSnapshot().total_blocks);
  std::printf("  SPARE pool : %u blocks of native PLC, no ECC (approximate)\n\n",
              device.SpareSnapshot().total_blocks);

  // --- 2. Host file system + trained classifier ----------------------------
  ExtentFileSystem fs(&device, &clock);

  CorpusConfig corpus_config;
  corpus_config.num_files = 4000;
  const std::vector<FileMeta> corpus = GenerateCorpus(corpus_config);
  const LogisticClassifier classifier = LogisticClassifier::Train(
      AsPointers(corpus), &ExpendableLabel, corpus_config.device_age_us);
  std::printf("Classifier trained on %zu synthetic files.\n\n", corpus.size());

  // --- 3. Three files with very different fates ----------------------------
  const auto photo_content = GenerateSyntheticImage(128, 128, /*seed=*/1);  // 16 KiB
  FileMeta photo;
  photo.type = FileType::kPhoto;
  photo.path = "dcim/camera/wedding_2024.jpg";
  photo.size_bytes = photo_content.size();
  photo.personal_signal = 0.95;  // content inspection found faces/favorites

  const VideoConfig video_config;
  const auto video_content = GenerateSyntheticVideo(video_config, /*frames=*/48, /*seed=*/2);
  FileMeta video;
  video.type = FileType::kVideo;
  video.path = "dcim/camera/meme_download.mp4";
  video.size_bytes = video_content.size();
  video.personal_signal = 0.02;  // nothing personal about it

  std::vector<uint8_t> db_content(8192, 0x42);
  FileMeta database;
  database.type = FileType::kAppData;
  database.path = "data/app/com.bank/state.db";
  database.size_bytes = db_content.size();

  // New data always lands on the reliable partition first (§4.4): declare
  // it critical through a placement handle and let the daemon demote later.
  PlacementDirectory placements(&device);
  const PlacementHandle critical = placements.For({Durability::kCritical}).value();
  const uint64_t photo_id = fs.CreateFile(photo, photo_content, critical).value();
  const uint64_t video_id = fs.CreateFile(video, video_content, critical).value();
  const uint64_t db_id = fs.CreateFile(database, db_content, critical).value();

  // --- 4. The nightly classification review (§4.4) -------------------------
  clock.Advance(7 * kUsPerDay);  // let the files age past the demotion guard
  MigrationDaemon daemon(&fs, &placements, &classifier, MigrationDaemonConfig{});
  const auto run = daemon.RunOnce(clock.now());
  std::printf("Migration daemon: scanned %llu files, demoted %llu to SPARE.\n",
              static_cast<unsigned long long>(run.scanned),
              static_cast<unsigned long long>(run.demoted));
  auto placement = [&](uint64_t id) {
    return DurabilityName(fs.PlacementSpecOf(id).value().durability);
  };
  std::printf("  %-32s -> %s\n", photo.path.c_str(), placement(photo_id));
  std::printf("  %-32s -> %s\n", video.path.c_str(), placement(video_id));
  std::printf("  %-32s -> %s\n\n", database.path.c_str(), placement(db_id));

  // --- 5. Two years pass (§4.2: slight degradation of SPARE data) ----------
  clock.Advance(YearsToUs(2.0));

  auto photo_read = fs.ReadFile(photo_id).value();
  auto video_read = fs.ReadFile(video_id).value();
  auto db_read = fs.ReadFile(db_id).value();

  const VideoQualityModel video_model(video_config);
  std::printf("After 2 years of retention:\n");
  std::printf("  wedding photo : %-8s PSNR %.1f dB (stored on %s)\n",
              photo_read.crc_ok ? "intact," : "DEGRADED,",
              ImageQualityModel::PsnrDb(photo_content, photo_read.data),
              placement(photo_id));
  std::printf("  meme video    : %-8s quality %.3f, %llu residual bit errors (on %s)\n",
              video_read.crc_ok ? "intact," : "degraded,",
              video_model.ScoreCorrupted(video_content, video_read.data),
              static_cast<unsigned long long>(video_read.residual_bit_errors),
              placement(video_id));
  std::printf("  bank database : %-8s CRC %s (stored on %s)\n\n",
              db_read.crc_ok ? "intact," : "DEGRADED,", db_read.crc_ok ? "ok" : "FAILED",
              placement(db_id));
  std::printf("(In deployment the monthly degradation monitor refreshes SPARE pages before\n");
  std::printf(" they cross the quality floor -- see bench_fig2_pipeline and §4.3.)\n\n");

  // --- 6. How the device looks through a UFS lens (§4.3, [75]) -------------
  std::printf("UFS unit-descriptor view of the device:\n%s\n",
              UfsView(&device).Render().c_str());
  std::printf("%s\n",
              RenderHealth(CollectHealth(device, clock.now_years(),
                                         device.capacity_blocks()))
                  .c_str());

  // --- 7. The sustainability ledger -----------------------------------------
  std::printf("Why bother: the same cells as TLC would have exported %.0f%% less capacity,\n",
              (1.0 - 3.0 / 4.44) * 100.0);
  std::printf("i.e. this device needs ~1/3 less silicon (and embodied carbon) per byte.\n");
  std::printf("Run the bench/ binaries to reproduce every number in the paper.\n");
  return 0;
}
