// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Scenario: exploring the SOS design space.
//
// Sweeps the SYS/SPARE split (the central design knob of §4.2) and prints
// the frontier it traces: capacity and embodied carbon on one side,
// reliable-capacity share and data-at-risk on the other. Then sweeps the
// classifier demotion threshold (the safety knob of §4.4) on a trained
// model. The default 50/50 split and 0.6 threshold sit where the paper's
// qualitative argument puts them: most of the density win at modest risk.
//
// Usage: design_explorer [capacity_gb=128] [--jobs=N]
//
// --jobs=N evaluates the threshold sweep's cuts on N pool workers; the
// trained model is read-only during the sweep and output order is fixed,
// so the report is identical for every N.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/carbon/embodied.h"
#include "src/classify/corpus.h"
#include "src/classify/eval.h"
#include "src/classify/logistic.h"
#include "src/common/table.h"
#include "src/sos/experiment.h"
#include "src/sos/sos_device.h"

using namespace sos;

int main(int argc, char** argv) {
  double capacity_gb = 128.0;
  size_t jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<size_t>(std::strtoul(argv[i] + 7, nullptr, 10));
    } else {
      capacity_gb = std::atof(argv[i]);
    }
  }
  const FlashCarbonModel carbon;
  const double tlc_kg = carbon.KgPerGb(CellTech::kTlc) * capacity_gb;

  std::printf("SOS design explorer, %.0f GB device\n\n", capacity_gb);
  std::printf("Knob 1: SYS share of the die (pseudo-QLC reliable vs PLC approximate)\n\n");
  TextTable split({"SYS share", "eff bits/cell", "capacity vs TLC", "kgCO2e", "carbon saving",
                   "reliable share of capacity"});
  for (double share : {0.0, 0.2, 0.35, 0.5, 0.65, 0.8, 1.0}) {
    const double bits = FlashCarbonModel::EffectiveBitsPerCell(CellTech::kQlc,
                                                               CellTech::kPlc, share);
    const double kg = carbon.KgPerGbSplit(CellTech::kQlc, CellTech::kPlc, share) * capacity_gb;
    // Fraction of exported capacity that lives on the reliable partition:
    // share of cells * bits of pQLC / total bits.
    const double reliable =
        share * 4.0 / (share * 4.0 + (1.0 - share) * 5.0);
    split.AddRow({FormatPercent(share, 0), FormatDouble(bits, 2),
                  FormatPercent(bits / 3.0 - 1.0), FormatDouble(kg, 1),
                  FormatPercent(1.0 - kg / tlc_kg), FormatPercent(reliable, 0)});
  }
  std::printf("%s\n", split.Render().c_str());
  std::printf(
      "Reading it: SYS share buys reliability and costs density. The paper's 50/50\n"
      "keeps ~45%% of capacity fully reliable while banking 2/3 of the max saving.\n\n");

  std::printf("Knob 2: classifier demotion threshold (data-at-risk vs density realized)\n\n");
  CorpusConfig corpus_config;
  corpus_config.num_files = 12000;
  corpus_config.seed = 777;
  const auto corpus = GenerateCorpus(corpus_config);
  const CorpusSplit split_set = SplitCorpus(corpus, 5);
  const LogisticClassifier model =
      LogisticClassifier::Train(split_set.train, &ExpendableLabel, corpus_config.device_age_us);
  TextTable threshold({"threshold", "bytes demoted to SPARE", "critical bytes at risk",
                       "expendable bytes left on SYS"});
  const std::vector<double> cuts = {0.3, 0.5, 0.6, 0.7, 0.9};
  struct CutOutcome {
    uint64_t demoted_bytes = 0;
    uint64_t at_risk_bytes = 0;
    uint64_t stranded_bytes = 0;
    uint64_t total_bytes = 0;
  };
  // Each cut only *reads* the trained model and the test split, so the
  // sweep fans out cleanly; results come back in cut order.
  ExperimentDriver driver(jobs);
  const std::vector<CutOutcome> outcomes =
      driver.Map(cuts.size(), [&](size_t i) {
        CutOutcome out;
        for (const FileMeta* meta : split_set.test) {
          out.total_bytes += meta->size_bytes;
          const bool demote = model.Predict(*meta, corpus_config.device_age_us, cuts[i]);
          const bool expendable = meta->true_priority == Priority::kExpendable;
          if (demote) {
            out.demoted_bytes += meta->size_bytes;
            if (!expendable) {
              out.at_risk_bytes += meta->size_bytes;
            }
          } else if (expendable) {
            out.stranded_bytes += meta->size_bytes;
          }
        }
        return out;
      });
  for (size_t i = 0; i < cuts.size(); ++i) {
    const CutOutcome& out = outcomes[i];
    auto pct = [&](uint64_t v) {
      return FormatPercent(static_cast<double>(v) / static_cast<double>(out.total_bytes));
    };
    threshold.AddRow({FormatDouble(cuts[i], 1), pct(out.demoted_bytes), pct(out.at_risk_bytes),
                      pct(out.stranded_bytes)});
  }
  std::printf("%s\n", threshold.Render().c_str());
  std::printf(
      "Reading it: a higher threshold strands expendable data on SYS (density lost);\n"
      "a lower one sends more critical bytes to the lossy partition. The daemon's\n"
      "default of 0.6, plus per-type user preferences, is the paper's \"err on the\n"
      "side of caution\" point. Run bench_classifier for the full tradeoff curves.\n");
  return 0;
}
