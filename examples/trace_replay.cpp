// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Scenario: record and replay workload traces.
//
// `record` writes N days of the synthetic mobile workload to a trace file
// (one event per line, human-readable); `replay` runs any such trace against
// a chosen device build and reports the outcome. Replaying the same trace on
// different builds is the controlled-experiment workflow behind E12.
//
// Usage: trace_replay record <file> [days=30] [seed=1] [intensity=1.0]
//        trace_replay replay <file> [device=sos|tlc|qlc|plc]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/table.h"
#include "src/host/file_system.h"
#include "src/host/workload.h"
#include "src/sos/sos_device.h"

using namespace sos;

namespace {

int Record(const char* path, uint32_t days, uint64_t seed, double intensity) {
  MobileWorkloadConfig config;
  config.seed = seed;
  config.intensity = intensity;
  MobileWorkloadGenerator generator(config);
  std::vector<WorkloadEvent> events;
  for (uint32_t day = 0; day < days; ++day) {
    auto day_events = generator.Day(day);
    events.insert(events.end(), day_events.begin(), day_events.end());
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  out << SerializeTrace(events);
  std::printf("Recorded %zu events over %u days to %s\n", events.size(), days, path);
  uint64_t creates = 0;
  uint64_t bytes = 0;
  for (const auto& ev : events) {
    if (ev.op == WorkloadOp::kCreate) {
      ++creates;
      bytes += ev.meta.size_bytes;
    }
  }
  std::printf("  %llu file creates, %s of new data\n",
              static_cast<unsigned long long>(creates), FormatBytes(bytes).c_str());
  return 0;
}

int Replay(const char* path, const char* device_name) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::vector<WorkloadEvent> events = ParseTrace(buffer.str());
  if (events.empty()) {
    std::fprintf(stderr, "no events in %s\n", path);
    return 1;
  }

  SimClock clock;
  std::unique_ptr<SosDevice> sos_device;
  std::unique_ptr<BaselineDevice> baseline;
  BlockDevice* device = nullptr;
  NandConfig nand;
  nand.num_blocks = 256;
  nand.store_payloads = false;
  if (std::strcmp(device_name, "sos") == 0) {
    SosDeviceConfig config;
    config.nand = nand;
    sos_device = std::make_unique<SosDevice>(config, &clock);
    device = sos_device.get();
  } else {
    nand.tech = std::strcmp(device_name, "tlc") == 0   ? CellTech::kTlc
                : std::strcmp(device_name, "qlc") == 0 ? CellTech::kQlc
                                                       : CellTech::kPlc;
    baseline = std::make_unique<BaselineDevice>(nand, &clock, EccPreset::kBch,
                                                GcPolicy::kGreedy);
    device = baseline.get();
  }
  ExtentFileSystem fs(device, &clock);
  PlacementDirectory placements(device);
  // Replay writes everything as critical data, like the recorder's host did.
  const PlacementHandle critical = placements.For({Durability::kCritical}).value();

  std::unordered_map<uint64_t, uint64_t> ref_to_id;
  uint64_t failures = 0;
  for (const WorkloadEvent& ev : events) {
    if (ev.at > clock.now()) {
      clock.AdvanceTo(ev.at);
    }
    switch (ev.op) {
      case WorkloadOp::kCreate: {
        FileMeta meta = ev.meta;
        meta.size_bytes = std::min<uint64_t>(meta.size_bytes, 32 * kKiB);
        auto id = fs.CreateFile(meta, {}, critical);
        if (id.ok()) {
          ref_to_id[ev.file_ref] = id.value();
        } else {
          ++failures;
        }
        break;
      }
      case WorkloadOp::kRead:
        if (auto it = ref_to_id.find(ev.file_ref); it != ref_to_id.end()) {
          IgnoreResult(fs.ReadFile(it->second));  // replay: outcome tallied below
        }
        break;
      case WorkloadOp::kUpdate:
        if (auto it = ref_to_id.find(ev.file_ref); it != ref_to_id.end()) {
          IgnoreResult(fs.OverwriteFile(it->second, {}));
        }
        break;
      case WorkloadOp::kDelete:
        if (auto it = ref_to_id.find(ev.file_ref); it != ref_to_id.end()) {
          IgnoreResult(fs.DeleteFile(it->second));
          ref_to_id.erase(it);
        }
        break;
    }
  }

  const Ftl& ftl = sos_device != nullptr ? sos_device->ftl() : baseline->ftl();
  const FsStats stats = fs.Stats();
  std::printf("Replayed %zu events on %s over %.0f simulated days:\n", events.size(),
              device_name, clock.now_days());
  std::printf("  files alive        : %s\n", FormatCount(stats.files).c_str());
  std::printf("  fs utilization     : %s\n",
              FormatPercent(static_cast<double>(stats.used_blocks) /
                            static_cast<double>(stats.capacity_blocks))
                  .c_str());
  std::printf("  write amplification: %.2f\n", ftl.stats().WriteAmplification());
  std::printf("  max wear           : %s\n", FormatPercent(ftl.nand().MaxWearRatio()).c_str());
  std::printf("  create failures    : %s\n", FormatCount(failures).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "record") == 0) {
    return Record(argv[2], argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 30,
                  argc > 4 ? static_cast<uint64_t>(std::atoll(argv[4])) : 1,
                  argc > 5 ? std::atof(argv[5]) : 1.0);
  }
  if (argc >= 3 && std::strcmp(argv[1], "replay") == 0) {
    return Replay(argv[2], argc > 3 ? argv[3] : "sos");
  }
  std::fprintf(stderr,
               "usage: %s record <file> [days] [seed] [intensity]\n"
               "       %s replay <file> [sos|tlc|qlc|plc]\n",
               argv[0], argv[0]);
  return 1;
}
