// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Scenario: the sustainability ledger for a storage configuration.
//
// A little calculator over the paper's §3 model: give it a capacity and it
// prints the embodied carbon of every way to build it (SLC..PLC and the SOS
// split), the carbon-credit exposure under representative pricing schemes,
// and the fleet-scale saving if all personal-device flash switched to SOS.
//
// Usage: carbon_report [capacity_gb=128] [sys_share=0.5]

#include <cstdio>
#include <cstdlib>

#include "src/carbon/embodied.h"
#include "src/carbon/market.h"
#include "src/carbon/projection.h"
#include "src/common/table.h"

using namespace sos;

int main(int argc, char** argv) {
  const double capacity_gb = argc > 1 ? std::atof(argv[1]) : 128.0;
  const double sys_share = argc > 2 ? std::atof(argv[2]) : 0.5;
  if (capacity_gb <= 0 || sys_share < 0 || sys_share > 1) {
    std::fprintf(stderr, "usage: %s [capacity_gb] [sys_share in 0..1]\n", argv[0]);
    return 1;
  }

  const FlashCarbonModel model;
  const auto schemes = RepresentativeCreditSchemes();
  const CarbonCredit& eu = schemes.front();

  std::printf("Embodied-carbon report for %.0f GB of flash storage\n", capacity_gb);
  std::printf("(production intensity anchored at %.2f kgCO2e/GB for TLC [Tannu & Nair])\n\n",
              model.tlc_kg_per_gb);

  TextTable table({"build", "bits/cell", "kgCO2e", "vs TLC", "EU credit cost"});
  const double tlc_kg = model.KgPerGb(CellTech::kTlc) * capacity_gb;
  for (CellTech tech : {CellTech::kSlc, CellTech::kMlc, CellTech::kTlc, CellTech::kQlc,
                        CellTech::kPlc}) {
    const double kg = model.KgPerGb(tech) * capacity_gb;
    table.AddRow({std::string(CellTechName(tech)), std::to_string(BitsPerCell(tech)),
                  FormatDouble(kg, 1), FormatPercent(kg / tlc_kg - 1.0),
                  "$" + FormatDouble(eu.CostPerTb(model.KgPerGb(tech)) * capacity_gb / 1000.0, 2)});
  }
  const double split_per_gb = model.KgPerGbSplit(CellTech::kQlc, CellTech::kPlc, sys_share);
  const double split_kg = split_per_gb * capacity_gb;
  char split_name[64];
  std::snprintf(split_name, sizeof(split_name), "SOS split (%.0f%% pQLC)", sys_share * 100.0);
  table.AddRow({split_name,
                FormatDouble(FlashCarbonModel::EffectiveBitsPerCell(CellTech::kQlc,
                                                                    CellTech::kPlc, sys_share),
                             2),
                FormatDouble(split_kg, 1), FormatPercent(split_kg / tlc_kg - 1.0),
                "$" + FormatDouble(eu.CostPerTb(split_per_gb) * capacity_gb / 1000.0, 2)});
  std::printf("%s\n", table.Render().c_str());

  std::printf("Carbon-credit exposure per TB at TLC intensity:\n");
  for (const CarbonCredit& scheme : schemes) {
    std::printf("  %-14s $%6.2f/tonne -> $%5.2f/TB (%s of a $45/TB QLC drive)\n",
                std::string(scheme.name).c_str(), scheme.usd_per_tonne,
                scheme.CostPerTb(model.tlc_kg_per_gb),
                FormatPercent(scheme.PriceIncreaseFraction(kQlcUsdPerTb2023,
                                                           model.tlc_kg_per_gb))
                    .c_str());
  }

  std::printf("\nFleet-scale what-if (2021 production, Figure 1 market mix):\n");
  const double personal_eb = kAnnualProduction2021Eb * PersonalBitShare();
  const double before_mt = personal_eb * model.KgPerGb(CellTech::kTlc);
  const double after_mt = personal_eb * split_per_gb;
  std::printf("  personal-device flash: %.0f EB/yr (%s of all flash bits)\n", personal_eb,
              FormatPercent(PersonalBitShare()).c_str());
  std::printf("  built as TLC  : %6.1f Mt CO2e/yr\n", before_mt);
  std::printf("  built as SOS  : %6.1f Mt CO2e/yr\n", after_mt);
  std::printf("  saving        : %6.1f Mt CO2e/yr  (annual emissions of %.1fM people)\n",
              before_mt - after_mt, PeopleEquivalent(before_mt - after_mt) / 1e6);
  return 0;
}
