file(REMOVE_RECURSE
  "CMakeFiles/bench_density_endurance.dir/bench_density_endurance.cc.o"
  "CMakeFiles/bench_density_endurance.dir/bench_density_endurance.cc.o.d"
  "bench_density_endurance"
  "bench_density_endurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_density_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
