# Empty compiler generated dependencies file for bench_density_endurance.
# This may be replaced when dependencies are built.
