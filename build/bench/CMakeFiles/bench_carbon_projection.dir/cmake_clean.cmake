file(REMOVE_RECURSE
  "CMakeFiles/bench_carbon_projection.dir/bench_carbon_projection.cc.o"
  "CMakeFiles/bench_carbon_projection.dir/bench_carbon_projection.cc.o.d"
  "bench_carbon_projection"
  "bench_carbon_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_carbon_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
