file(REMOVE_RECURSE
  "CMakeFiles/bench_capacity_gain.dir/bench_capacity_gain.cc.o"
  "CMakeFiles/bench_capacity_gain.dir/bench_capacity_gain.cc.o.d"
  "bench_capacity_gain"
  "bench_capacity_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_capacity_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
