# Empty dependencies file for bench_capacity_gain.
# This may be replaced when dependencies are built.
