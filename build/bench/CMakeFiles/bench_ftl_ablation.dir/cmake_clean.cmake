file(REMOVE_RECURSE
  "CMakeFiles/bench_ftl_ablation.dir/bench_ftl_ablation.cc.o"
  "CMakeFiles/bench_ftl_ablation.dir/bench_ftl_ablation.cc.o.d"
  "bench_ftl_ablation"
  "bench_ftl_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ftl_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
