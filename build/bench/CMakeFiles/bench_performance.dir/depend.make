# Empty dependencies file for bench_performance.
# This may be replaced when dependencies are built.
