file(REMOVE_RECURSE
  "CMakeFiles/bench_performance.dir/bench_performance.cc.o"
  "CMakeFiles/bench_performance.dir/bench_performance.cc.o.d"
  "bench_performance"
  "bench_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
