file(REMOVE_RECURSE
  "CMakeFiles/bench_degradation_quality.dir/bench_degradation_quality.cc.o"
  "CMakeFiles/bench_degradation_quality.dir/bench_degradation_quality.cc.o.d"
  "bench_degradation_quality"
  "bench_degradation_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_degradation_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
