# Empty compiler generated dependencies file for bench_lifetime_gap.
# This may be replaced when dependencies are built.
