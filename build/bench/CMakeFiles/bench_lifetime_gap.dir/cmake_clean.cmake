file(REMOVE_RECURSE
  "CMakeFiles/bench_lifetime_gap.dir/bench_lifetime_gap.cc.o"
  "CMakeFiles/bench_lifetime_gap.dir/bench_lifetime_gap.cc.o.d"
  "bench_lifetime_gap"
  "bench_lifetime_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lifetime_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
