file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_market.dir/bench_fig1_market.cc.o"
  "CMakeFiles/bench_fig1_market.dir/bench_fig1_market.cc.o.d"
  "bench_fig1_market"
  "bench_fig1_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
