# Empty dependencies file for bench_fig1_market.
# This may be replaced when dependencies are built.
