
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_market.cc" "bench/CMakeFiles/bench_fig1_market.dir/bench_fig1_market.cc.o" "gcc" "bench/CMakeFiles/bench_fig1_market.dir/bench_fig1_market.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sos/CMakeFiles/sos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/sos_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/sos_host.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/sos_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/sos_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/sos_media.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/sos_carbon.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/sos_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
