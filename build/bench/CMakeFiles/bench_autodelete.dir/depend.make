# Empty dependencies file for bench_autodelete.
# This may be replaced when dependencies are built.
