file(REMOVE_RECURSE
  "CMakeFiles/bench_autodelete.dir/bench_autodelete.cc.o"
  "CMakeFiles/bench_autodelete.dir/bench_autodelete.cc.o.d"
  "bench_autodelete"
  "bench_autodelete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_autodelete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
