file(REMOVE_RECURSE
  "CMakeFiles/bench_capacity_variance.dir/bench_capacity_variance.cc.o"
  "CMakeFiles/bench_capacity_variance.dir/bench_capacity_variance.cc.o.d"
  "bench_capacity_variance"
  "bench_capacity_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_capacity_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
