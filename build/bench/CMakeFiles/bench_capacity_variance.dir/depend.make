# Empty dependencies file for bench_capacity_variance.
# This may be replaced when dependencies are built.
