file(REMOVE_RECURSE
  "CMakeFiles/bench_slc_staging.dir/bench_slc_staging.cc.o"
  "CMakeFiles/bench_slc_staging.dir/bench_slc_staging.cc.o.d"
  "bench_slc_staging"
  "bench_slc_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slc_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
