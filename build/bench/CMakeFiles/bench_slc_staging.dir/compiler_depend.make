# Empty compiler generated dependencies file for bench_slc_staging.
# This may be replaced when dependencies are built.
