# Empty dependencies file for bench_sos_vs_baselines.
# This may be replaced when dependencies are built.
