file(REMOVE_RECURSE
  "CMakeFiles/bench_sos_vs_baselines.dir/bench_sos_vs_baselines.cc.o"
  "CMakeFiles/bench_sos_vs_baselines.dir/bench_sos_vs_baselines.cc.o.d"
  "bench_sos_vs_baselines"
  "bench_sos_vs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sos_vs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
