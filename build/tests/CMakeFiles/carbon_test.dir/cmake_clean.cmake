file(REMOVE_RECURSE
  "CMakeFiles/carbon_test.dir/carbon_test.cc.o"
  "CMakeFiles/carbon_test.dir/carbon_test.cc.o.d"
  "carbon_test"
  "carbon_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carbon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
