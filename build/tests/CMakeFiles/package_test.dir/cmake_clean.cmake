file(REMOVE_RECURSE
  "CMakeFiles/package_test.dir/package_test.cc.o"
  "CMakeFiles/package_test.dir/package_test.cc.o.d"
  "package_test"
  "package_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/package_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
