file(REMOVE_RECURSE
  "CMakeFiles/voltage_test.dir/voltage_test.cc.o"
  "CMakeFiles/voltage_test.dir/voltage_test.cc.o.d"
  "voltage_test"
  "voltage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
