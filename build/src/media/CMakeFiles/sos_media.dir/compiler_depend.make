# Empty compiler generated dependencies file for sos_media.
# This may be replaced when dependencies are built.
