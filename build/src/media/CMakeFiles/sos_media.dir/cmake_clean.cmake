file(REMOVE_RECURSE
  "CMakeFiles/sos_media.dir/quality.cc.o"
  "CMakeFiles/sos_media.dir/quality.cc.o.d"
  "libsos_media.a"
  "libsos_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sos_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
