file(REMOVE_RECURSE
  "libsos_media.a"
)
