file(REMOVE_RECURSE
  "libsos_host.a"
)
