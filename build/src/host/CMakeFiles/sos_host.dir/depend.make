# Empty dependencies file for sos_host.
# This may be replaced when dependencies are built.
