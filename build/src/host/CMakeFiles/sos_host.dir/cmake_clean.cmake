file(REMOVE_RECURSE
  "CMakeFiles/sos_host.dir/compression.cc.o"
  "CMakeFiles/sos_host.dir/compression.cc.o.d"
  "CMakeFiles/sos_host.dir/file_system.cc.o"
  "CMakeFiles/sos_host.dir/file_system.cc.o.d"
  "CMakeFiles/sos_host.dir/workload.cc.o"
  "CMakeFiles/sos_host.dir/workload.cc.o.d"
  "libsos_host.a"
  "libsos_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sos_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
