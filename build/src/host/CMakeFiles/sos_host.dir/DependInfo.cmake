
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/compression.cc" "src/host/CMakeFiles/sos_host.dir/compression.cc.o" "gcc" "src/host/CMakeFiles/sos_host.dir/compression.cc.o.d"
  "/root/repo/src/host/file_system.cc" "src/host/CMakeFiles/sos_host.dir/file_system.cc.o" "gcc" "src/host/CMakeFiles/sos_host.dir/file_system.cc.o.d"
  "/root/repo/src/host/workload.cc" "src/host/CMakeFiles/sos_host.dir/workload.cc.o" "gcc" "src/host/CMakeFiles/sos_host.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/sos_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/sos_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/sos_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
