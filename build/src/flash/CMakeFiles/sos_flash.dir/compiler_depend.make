# Empty compiler generated dependencies file for sos_flash.
# This may be replaced when dependencies are built.
