
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flash/cell_tech.cc" "src/flash/CMakeFiles/sos_flash.dir/cell_tech.cc.o" "gcc" "src/flash/CMakeFiles/sos_flash.dir/cell_tech.cc.o.d"
  "/root/repo/src/flash/error_model.cc" "src/flash/CMakeFiles/sos_flash.dir/error_model.cc.o" "gcc" "src/flash/CMakeFiles/sos_flash.dir/error_model.cc.o.d"
  "/root/repo/src/flash/nand_device.cc" "src/flash/CMakeFiles/sos_flash.dir/nand_device.cc.o" "gcc" "src/flash/CMakeFiles/sos_flash.dir/nand_device.cc.o.d"
  "/root/repo/src/flash/nand_package.cc" "src/flash/CMakeFiles/sos_flash.dir/nand_package.cc.o" "gcc" "src/flash/CMakeFiles/sos_flash.dir/nand_package.cc.o.d"
  "/root/repo/src/flash/voltage_model.cc" "src/flash/CMakeFiles/sos_flash.dir/voltage_model.cc.o" "gcc" "src/flash/CMakeFiles/sos_flash.dir/voltage_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
