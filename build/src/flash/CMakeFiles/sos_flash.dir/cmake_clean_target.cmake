file(REMOVE_RECURSE
  "libsos_flash.a"
)
