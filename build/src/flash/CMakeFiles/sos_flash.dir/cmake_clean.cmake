file(REMOVE_RECURSE
  "CMakeFiles/sos_flash.dir/cell_tech.cc.o"
  "CMakeFiles/sos_flash.dir/cell_tech.cc.o.d"
  "CMakeFiles/sos_flash.dir/error_model.cc.o"
  "CMakeFiles/sos_flash.dir/error_model.cc.o.d"
  "CMakeFiles/sos_flash.dir/nand_device.cc.o"
  "CMakeFiles/sos_flash.dir/nand_device.cc.o.d"
  "CMakeFiles/sos_flash.dir/nand_package.cc.o"
  "CMakeFiles/sos_flash.dir/nand_package.cc.o.d"
  "CMakeFiles/sos_flash.dir/voltage_model.cc.o"
  "CMakeFiles/sos_flash.dir/voltage_model.cc.o.d"
  "libsos_flash.a"
  "libsos_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sos_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
