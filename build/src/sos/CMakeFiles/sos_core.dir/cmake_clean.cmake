file(REMOVE_RECURSE
  "CMakeFiles/sos_core.dir/daemons.cc.o"
  "CMakeFiles/sos_core.dir/daemons.cc.o.d"
  "CMakeFiles/sos_core.dir/health.cc.o"
  "CMakeFiles/sos_core.dir/health.cc.o.d"
  "CMakeFiles/sos_core.dir/lifetime_sim.cc.o"
  "CMakeFiles/sos_core.dir/lifetime_sim.cc.o.d"
  "CMakeFiles/sos_core.dir/sos_device.cc.o"
  "CMakeFiles/sos_core.dir/sos_device.cc.o.d"
  "CMakeFiles/sos_core.dir/ufs.cc.o"
  "CMakeFiles/sos_core.dir/ufs.cc.o.d"
  "libsos_core.a"
  "libsos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
