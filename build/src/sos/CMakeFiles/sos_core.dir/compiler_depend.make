# Empty compiler generated dependencies file for sos_core.
# This may be replaced when dependencies are built.
