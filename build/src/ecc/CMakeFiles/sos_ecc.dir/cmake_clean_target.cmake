file(REMOVE_RECURSE
  "libsos_ecc.a"
)
