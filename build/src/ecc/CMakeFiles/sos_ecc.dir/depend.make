# Empty dependencies file for sos_ecc.
# This may be replaced when dependencies are built.
