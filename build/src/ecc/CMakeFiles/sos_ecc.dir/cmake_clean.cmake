file(REMOVE_RECURSE
  "CMakeFiles/sos_ecc.dir/bch.cc.o"
  "CMakeFiles/sos_ecc.dir/bch.cc.o.d"
  "CMakeFiles/sos_ecc.dir/ecc_scheme.cc.o"
  "CMakeFiles/sos_ecc.dir/ecc_scheme.cc.o.d"
  "CMakeFiles/sos_ecc.dir/hamming.cc.o"
  "CMakeFiles/sos_ecc.dir/hamming.cc.o.d"
  "CMakeFiles/sos_ecc.dir/parity.cc.o"
  "CMakeFiles/sos_ecc.dir/parity.cc.o.d"
  "libsos_ecc.a"
  "libsos_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sos_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
