file(REMOVE_RECURSE
  "libsos_carbon.a"
)
