file(REMOVE_RECURSE
  "CMakeFiles/sos_carbon.dir/embodied.cc.o"
  "CMakeFiles/sos_carbon.dir/embodied.cc.o.d"
  "CMakeFiles/sos_carbon.dir/market.cc.o"
  "CMakeFiles/sos_carbon.dir/market.cc.o.d"
  "CMakeFiles/sos_carbon.dir/projection.cc.o"
  "CMakeFiles/sos_carbon.dir/projection.cc.o.d"
  "libsos_carbon.a"
  "libsos_carbon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sos_carbon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
