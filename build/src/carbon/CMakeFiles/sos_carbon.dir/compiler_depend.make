# Empty compiler generated dependencies file for sos_carbon.
# This may be replaced when dependencies are built.
