# Empty compiler generated dependencies file for sos_ftl.
# This may be replaced when dependencies are built.
