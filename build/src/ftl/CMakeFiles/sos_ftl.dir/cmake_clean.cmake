file(REMOVE_RECURSE
  "CMakeFiles/sos_ftl.dir/ftl.cc.o"
  "CMakeFiles/sos_ftl.dir/ftl.cc.o.d"
  "libsos_ftl.a"
  "libsos_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sos_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
