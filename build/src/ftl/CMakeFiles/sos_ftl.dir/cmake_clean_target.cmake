file(REMOVE_RECURSE
  "libsos_ftl.a"
)
