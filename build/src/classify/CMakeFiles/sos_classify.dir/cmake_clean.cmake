file(REMOVE_RECURSE
  "CMakeFiles/sos_classify.dir/boosted_stumps.cc.o"
  "CMakeFiles/sos_classify.dir/boosted_stumps.cc.o.d"
  "CMakeFiles/sos_classify.dir/classifier.cc.o"
  "CMakeFiles/sos_classify.dir/classifier.cc.o.d"
  "CMakeFiles/sos_classify.dir/corpus.cc.o"
  "CMakeFiles/sos_classify.dir/corpus.cc.o.d"
  "CMakeFiles/sos_classify.dir/eval.cc.o"
  "CMakeFiles/sos_classify.dir/eval.cc.o.d"
  "CMakeFiles/sos_classify.dir/features.cc.o"
  "CMakeFiles/sos_classify.dir/features.cc.o.d"
  "CMakeFiles/sos_classify.dir/file_meta.cc.o"
  "CMakeFiles/sos_classify.dir/file_meta.cc.o.d"
  "CMakeFiles/sos_classify.dir/logistic.cc.o"
  "CMakeFiles/sos_classify.dir/logistic.cc.o.d"
  "CMakeFiles/sos_classify.dir/naive_bayes.cc.o"
  "CMakeFiles/sos_classify.dir/naive_bayes.cc.o.d"
  "libsos_classify.a"
  "libsos_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sos_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
