file(REMOVE_RECURSE
  "libsos_classify.a"
)
