# Empty compiler generated dependencies file for sos_classify.
# This may be replaced when dependencies are built.
