
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/boosted_stumps.cc" "src/classify/CMakeFiles/sos_classify.dir/boosted_stumps.cc.o" "gcc" "src/classify/CMakeFiles/sos_classify.dir/boosted_stumps.cc.o.d"
  "/root/repo/src/classify/classifier.cc" "src/classify/CMakeFiles/sos_classify.dir/classifier.cc.o" "gcc" "src/classify/CMakeFiles/sos_classify.dir/classifier.cc.o.d"
  "/root/repo/src/classify/corpus.cc" "src/classify/CMakeFiles/sos_classify.dir/corpus.cc.o" "gcc" "src/classify/CMakeFiles/sos_classify.dir/corpus.cc.o.d"
  "/root/repo/src/classify/eval.cc" "src/classify/CMakeFiles/sos_classify.dir/eval.cc.o" "gcc" "src/classify/CMakeFiles/sos_classify.dir/eval.cc.o.d"
  "/root/repo/src/classify/features.cc" "src/classify/CMakeFiles/sos_classify.dir/features.cc.o" "gcc" "src/classify/CMakeFiles/sos_classify.dir/features.cc.o.d"
  "/root/repo/src/classify/file_meta.cc" "src/classify/CMakeFiles/sos_classify.dir/file_meta.cc.o" "gcc" "src/classify/CMakeFiles/sos_classify.dir/file_meta.cc.o.d"
  "/root/repo/src/classify/logistic.cc" "src/classify/CMakeFiles/sos_classify.dir/logistic.cc.o" "gcc" "src/classify/CMakeFiles/sos_classify.dir/logistic.cc.o.d"
  "/root/repo/src/classify/naive_bayes.cc" "src/classify/CMakeFiles/sos_classify.dir/naive_bayes.cc.o" "gcc" "src/classify/CMakeFiles/sos_classify.dir/naive_bayes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/sos_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
