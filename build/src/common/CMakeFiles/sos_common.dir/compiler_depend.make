# Empty compiler generated dependencies file for sos_common.
# This may be replaced when dependencies are built.
