file(REMOVE_RECURSE
  "CMakeFiles/sos_common.dir/rng.cc.o"
  "CMakeFiles/sos_common.dir/rng.cc.o.d"
  "CMakeFiles/sos_common.dir/stats.cc.o"
  "CMakeFiles/sos_common.dir/stats.cc.o.d"
  "CMakeFiles/sos_common.dir/status.cc.o"
  "CMakeFiles/sos_common.dir/status.cc.o.d"
  "CMakeFiles/sos_common.dir/table.cc.o"
  "CMakeFiles/sos_common.dir/table.cc.o.d"
  "libsos_common.a"
  "libsos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
