file(REMOVE_RECURSE
  "libsos_common.a"
)
