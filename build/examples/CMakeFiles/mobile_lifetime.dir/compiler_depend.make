# Empty compiler generated dependencies file for mobile_lifetime.
# This may be replaced when dependencies are built.
