file(REMOVE_RECURSE
  "CMakeFiles/mobile_lifetime.dir/mobile_lifetime.cpp.o"
  "CMakeFiles/mobile_lifetime.dir/mobile_lifetime.cpp.o.d"
  "mobile_lifetime"
  "mobile_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
