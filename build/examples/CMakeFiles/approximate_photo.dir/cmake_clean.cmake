file(REMOVE_RECURSE
  "CMakeFiles/approximate_photo.dir/approximate_photo.cpp.o"
  "CMakeFiles/approximate_photo.dir/approximate_photo.cpp.o.d"
  "approximate_photo"
  "approximate_photo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximate_photo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
