# Empty dependencies file for approximate_photo.
# This may be replaced when dependencies are built.
