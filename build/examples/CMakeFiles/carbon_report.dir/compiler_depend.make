# Empty compiler generated dependencies file for carbon_report.
# This may be replaced when dependencies are built.
